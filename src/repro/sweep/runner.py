"""The parallel sweep runner: grid points fanned across worker processes.

The paper's headline result (Figures 7-9) is a 14-block-size ×
multi-layout GE sweep; serially that is minutes of simulation.  This
runner executes the same grid across ``workers`` processes:

* **Self-tuning execution.**  With ``executor="auto"`` the runner
  predicts the grid's serial cost from the memo layer's calibrated
  point-cost model (probing one point when cold), measures the pool
  spawn overhead once, and picks vectorized-serial, a thread pool
  (shared trace/plan/memo caches), or the process pool — recording the
  decision in the stats (hence the run manifest) and a ``sweep.decide``
  span.  See :mod:`repro.sweep.executor`.
* **Chunked scheduling.**  Pending points are split into contiguous
  chunks (default: ~4 chunks per worker) dispatched to a process pool as
  workers free up, so a few slow points (large ``b``, measured runs)
  don't serialise the tail.
* **Deterministic results.**  Whatever order chunks complete in, the
  returned summaries are in grid order — ``result.summaries[i]`` always
  belongs to ``points[i]``, and a ``--workers 8`` sweep is bit-identical
  to a ``--workers 1`` sweep.
* **Shared-store coordination.**  With an :class:`ExperimentStore`
  attached, already-stored points are short-circuited *before* dispatch
  (``resume=True``), and each worker persists every point it computes
  through the store's atomic, advisory-locked writes — so an interrupted
  sweep resumes where it stopped, and concurrent sweeps sharing a store
  never corrupt or duplicate entries.

Workers receive only picklable payloads (the point list, the LogGP
parameters, the cost model, the store *directory*) and re-open the store
themselves; results travel back as :class:`PointSummary` values.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters
from ..core.predictor import summarize_ge_point, summarize_uq_point
from ..experiments import ExperimentStore, PointSummary
from ..kernel import flags as _kernel_flags
from ..kernel.memo import observe_point_cost, point_weight
from ..obs import TraceConfig, TraceContext, Tracer, get_tracer, tracing
from ..obs.telemetry import write_shard
from ..uq.spec import UQSpec
from .executor import (
    ExecutorDecision,
    available_cpus,
    decide_executor,
    estimate_grid_cost,
)
from .points import SweepPoint

__all__ = ["SweepStats", "SweepResult", "run_sweep"]

#: progress callback signature: (points done, points total, point, source)
#: where ``source`` is ``"cached"`` or ``"computed"``.
ProgressFn = Callable[[int, int, SweepPoint, str], None]

StoreLike = Union[ExperimentStore, str, Path, None]


@dataclass
class SweepStats:
    """How one sweep executed (the manifest's ``sweep`` block)."""

    total: int
    cached: int
    computed: int
    workers: int
    chunks: int
    wall_s: float = 0.0
    #: strategy that ran the pending points: serial | thread | process
    executor: str = "serial"
    #: the :class:`~repro.sweep.executor.ExecutorDecision` that picked it
    #: (None when nothing was pending)
    decision: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SweepResult:
    """A completed sweep: summaries in grid order plus execution stats."""

    points: tuple[SweepPoint, ...]
    summaries: list[PointSummary]
    stats: SweepStats

    def rows(self) -> list[dict]:
        """JSON-ready rows in grid order (full totals and breakdowns)."""
        return [dict(s.__dict__) for s in self.summaries]

    def digest(self) -> str:
        """SHA-256 over the canonical result rows.

        Timing-free and order-stable, so two sweeps of the same grid
        agree on the digest iff they agree on every value — the
        cross-engine differential gate CI checks.
        """
        payload = json.dumps(self.rows(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def _evaluate_point(
    point: SweepPoint,
    params: LogGPParameters,
    cost_model: CostModel,
    store: Optional[ExperimentStore],
    uq: Optional[UQSpec] = None,
) -> PointSummary:
    """One point, through the store when there is one (compute + persist).

    With a UQ spec the point's seed selects a perturbed machine replicate
    (:func:`repro.core.predictor.summarize_uq_point`); the store —
    already keyed with the spec's tag — caches replicates like any other
    point.
    """
    if uq is not None and not uq.is_identity():
        hit = (
            store.get(
                point.n, point.b, point.layout,
                seed=point.seed, with_measured=point.with_measured,
            )
            if store is not None
            else None
        )
        if hit is not None:
            return hit
        summary = PointSummary(
            **summarize_uq_point(
                point.n, point.b, point.layout, params, cost_model, uq,
                with_measured=point.with_measured, seed=point.seed,
            )
        )
        if store is not None:
            store.put(summary, with_measured=point.with_measured)
        return summary
    if store is not None:
        return store.point(
            point.n, point.b, point.layout,
            seed=point.seed, with_measured=point.with_measured,
        )
    return PointSummary(
        **summarize_ge_point(
            point.n, point.b, point.layout, params, cost_model,
            with_measured=point.with_measured, seed=point.seed,
        )
    )


def _run_chunk(payload):
    """Worker entrypoint: evaluate one chunk of (index, point) pairs.

    Module-level (hence picklable by reference) and self-contained: the
    worker re-opens the store from its directory so every process holds
    its own handle, coordinated only through the store's atomic writes.

    When the parent sweep is traced, its :class:`TraceConfig` travels in
    the payload: the worker traces its chunk locally (filters and
    deterministic sampling applied here, so retention cannot depend on
    the worker count) and ships the materialised rows plus a metrics
    snapshot back for the parent to absorb.  Returns
    ``(chunk_no, results, rows, metrics_snapshot)`` with the last two
    ``None`` for untraced sweeps.

    Two optional telemetry fields ride in the payload (see
    :mod:`repro.obs.telemetry`): ``ctx_doc`` — the dispatching run's
    :class:`TraceContext` wire document, from which the worker derives
    the chunk's deterministic span id (``parent.child("sweep.chunk",
    chunk_no)``) so the merged timeline parents every worker-interior
    span under the dispatching run; and ``shard_path`` — when set, the
    worker flushes its events *and* metrics to that shard file instead
    of shipping anything back (rows and snapshot return ``None``), so a
    later :func:`repro.obs.merge_shards` sees each event and each
    counter exactly once.
    """
    (store_dir, params, cost_model, uq, fast, trace_doc,
     ctx_doc, shard_path, chunk_no, indexed) = payload
    # A spawn-context worker does not inherit a parent's set_enabled(), so
    # the flag travels in the payload (proven result-neutral by the
    # differential harness, but the dispatch must still be consistent).
    _kernel_flags.set_enabled(fast)
    store = (
        ExperimentStore(
            store_dir, params, cost_model,
            extra_tag=uq.store_tag() if uq is not None else None,
        )
        if store_dir is not None
        else None
    )
    if trace_doc is None:
        if fast:
            # Untraced + fast: run the whole chunk through the SoA batch
            # evaluator, same as the serial fast branch — per-point width-1
            # lanes would forfeit the kernel's cross-point win.
            collected: list = []
            _evaluate_pending_batch(
                indexed, params, cost_model, store, uq,
                lambda idx, point, summary: collected.append((idx, summary)),
            )
            return chunk_no, collected, None, None
        results = [
            (idx, _evaluate_point(point, params, cost_model, store, uq))
            for idx, point in indexed
        ]
        return chunk_no, results, None, None
    tracer = Tracer(config=TraceConfig.from_dict(trace_doc))
    parent_ctx = TraceContext.from_dict(ctx_doc) if ctx_doc else None
    chunk_ctx = (
        parent_ctx.child("sweep.chunk", chunk_no) if parent_ctx is not None else None
    )
    with tracing(tracer):
        with tracer.span(
            "sweep.chunk",
            ctx=chunk_ctx,
            parent_span_id=parent_ctx.span_id if parent_ctx is not None else None,
            chunk=chunk_no,
            points=len(indexed),
        ):
            results = [
                (idx, _evaluate_point(point, params, cost_model, store, uq))
                for idx, point in indexed
            ]
    if shard_path is not None:
        write_shard(
            shard_path, tracer,
            label=f"chunk-{chunk_no:04d}", context=chunk_ctx,
        )
        return chunk_no, results, None, None
    rows = tracer.export_rows()
    snap = tracer.metrics.snapshot()
    # the parent re-counts obs.events.* when it materialises the absorbed
    # rows; shipping the worker's copies too would double the tallies
    snap["counters"] = {
        k: v for k, v in snap["counters"].items()
        if not k.startswith("obs.events.")
    }
    return chunk_no, results, rows, snap


def _chunked(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _weight_chunks(
    pending: list[tuple[int, SweepPoint]], target_chunks: int
) -> list[list[tuple[int, SweepPoint]]]:
    """Contiguous chunks balanced by point *weight*, not point count.

    Grid cost is heavily skewed — at n=960 the b=10 point alone is ~23%
    of the whole Figure 7 sweep — so equal-count chunks leave one worker
    holding most of the work.  Cutting chunk boundaries when the
    accumulated :func:`point_weight` reaches an equal share keeps cheap
    tail points batched while heavy points travel alone.  Chunks remain
    contiguous slices of ``pending`` in grid order, so the traced
    absorb-in-chunk-order invariant (and result reassembly) is untouched;
    with uniform weights this degrades to exactly the equal-count split.
    """
    total = sum(point_weight(p.n, p.b, p.with_measured) for _, p in pending)
    if total <= 0.0 or target_chunks <= 1:
        return [list(pending)]
    goal = total / target_chunks
    chunks: list[list[tuple[int, SweepPoint]]] = []
    current: list[tuple[int, SweepPoint]] = []
    acc = 0.0
    for item in pending:
        w = point_weight(item[1].n, item[1].b, item[1].with_measured)
        # close *before* overshooting, so a heavy point never rides on an
        # already-loaded chunk (it would become the makespan's long pole)
        if current and acc + w > goal and len(chunks) < target_chunks - 1:
            chunks.append(current)
            current = []
            acc = 0.0
        current.append(item)
        acc += w
        if acc >= goal and len(chunks) < target_chunks - 1:
            chunks.append(current)
            current = []
            acc = 0.0
    if current:
        chunks.append(current)
    return chunks


def _evaluate_pending_batch(
    pending: list[tuple[int, SweepPoint]],
    params: LogGPParameters,
    cost_model: CostModel,
    store: Optional[ExperimentStore],
    uq: Optional[UQSpec],
    finish_point,
) -> int:
    """Serial evaluation through the vectorized batch kernel.

    Mirrors :func:`_evaluate_point` exactly — per point: store get,
    compute on miss, store put — but computes the misses together via
    :func:`repro.kernel.vector.evaluate_ge_points_batch`, so replicate
    lanes sharing a configuration advance in lockstep over one compiled
    plan.  Results are emitted in pending order, and the measured wall
    time calibrates the executor's point-cost model.  Untraced + fast
    path only.  Returns the number of batch calls made (chunk count).
    """
    from ..kernel.vector import evaluate_ge_points_batch

    results: dict[int, PointSummary] = {}
    misses: list[tuple[int, SweepPoint]] = []
    for idx, point in pending:
        hit = (
            store.get(
                point.n, point.b, point.layout,
                seed=point.seed, with_measured=point.with_measured,
            )
            if store is not None
            else None
        )
        if hit is not None:
            results[idx] = hit
        else:
            misses.append((idx, point))
    if misses:
        t0 = time.perf_counter()
        summaries = evaluate_ge_points_batch(
            [pt for _, pt in misses], params, cost_model, uq=uq
        )
        elapsed = time.perf_counter() - t0
        # Apportion the batch's wall time across its points by weight:
        # each observation then carries the batch's mean rate, which is
        # what the executor's EWMA wants to track.
        total_w = sum(
            point_weight(pt.n, pt.b, pt.with_measured) for _, pt in misses
        )
        rate = elapsed / total_w if total_w > 0.0 else 0.0
        for (idx, point), summary_dict in zip(misses, summaries):
            summary = PointSummary(**summary_dict)
            if store is not None:
                store.put(summary, with_measured=point.with_measured)
            results[idx] = summary
            observe_point_cost(
                point.n, point.b, point.with_measured,
                rate * point_weight(point.n, point.b, point.with_measured),
            )
    for idx, point in pending:
        finish_point(idx, point, results[idx])
    return 1 if misses else 0


def run_sweep(
    points: Sequence[SweepPoint],
    params: LogGPParameters,
    cost_model: CostModel,
    *,
    workers: Optional[int] = 1,
    executor: Optional[str] = None,
    store: StoreLike = None,
    resume: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    mp_context: Optional[str] = None,
    uq: Optional[UQSpec] = None,
    trace_shard_dir: Union[str, Path, None] = None,
) -> SweepResult:
    """Evaluate a sweep grid, optionally in parallel and store-backed.

    Parameters
    ----------
    points:
        The grid (see :func:`repro.sweep.expand_grid`); results come
        back in this order regardless of ``workers``.
    workers:
        Process count.  ``<= 1`` runs in-process (no pool, no pickling)
        — the reference path the differential tests compare against.
        With ``executor`` set, ``workers`` merely caps the pool width
        and may be ``None`` (use every available CPU).
    executor:
        Execution strategy: ``None`` keeps the legacy behaviour (the
        ``workers`` count alone decides serial vs process pool);
        ``"serial"`` / ``"thread"`` / ``"process"`` force a strategy;
        ``"auto"`` lets the calibrated cost model choose (see
        :mod:`repro.sweep.executor`).  Every strategy is bit-identical
        — only wall time differs.
    store:
        An :class:`ExperimentStore`, a directory for one, or ``None``
        (compute-only).  Workers persist what they compute.
    resume:
        With a store, short-circuit already-stored points before
        dispatch.  ``False`` recomputes (and overwrites) everything.
    chunk_size:
        Points per dispatched chunk (default: grid split into ~4 chunks
        per worker).
    progress:
        ``(done, total, point, source)`` callback, invoked once per
        point as its result lands (cached points first, then computed
        points in completion order).
    mp_context:
        :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default.
    uq:
        Optional :class:`repro.uq.UQSpec`: each point's seed then selects
        a perturbed machine replicate instead of the base machine (the
        Monte Carlo path of :func:`repro.uq.run_uq`).  An identity spec
        behaves exactly like ``None``.
    trace_shard_dir:
        Directory for per-worker trace shards.  When set (and the sweep
        is traced), process-pool workers flush their events and metrics
        to ``shard-chunk-NNNN.jsonl`` sidecars instead of shipping rows
        back for live absorption; stitch afterwards with ``repro
        trace-merge`` (see :mod:`repro.obs.telemetry`).  Ignored when
        untraced or when no process pool runs.
    """
    points = tuple(points)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if executor is not None and executor not in ("auto", "serial", "thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; "
            "expected auto, serial, thread or process"
        )
    if executor is None and workers is None:
        workers = 1
    if isinstance(store, (str, Path)):
        store = ExperimentStore(
            store, params, cost_model,
            extra_tag=uq.store_tag() if uq is not None else None,
        )
    tracer = get_tracer()
    t0 = time.perf_counter()

    total = len(points)
    summaries: list[Optional[PointSummary]] = [None] * total
    done = 0

    # -- short-circuit stored points before any dispatch --------------------
    pending: list[tuple[int, SweepPoint]] = []
    for idx, point in enumerate(points):
        hit = (
            store.get(
                point.n, point.b, point.layout,
                seed=point.seed, with_measured=point.with_measured,
            )
            if (store is not None and resume)
            else None
        )
        if hit is not None:
            summaries[idx] = hit
            done += 1
            if progress is not None:
                progress(done, total, point, "cached")
        else:
            pending.append((idx, point))
    cached = done
    tracer.count("sweep.points_cached", cached)

    def finish_point(idx: int, point: SweepPoint, summary: PointSummary) -> None:
        nonlocal done
        summaries[idx] = summary
        done += 1
        tracer.count("sweep.points_computed")
        if progress is not None:
            progress(done, total, point, "computed")

    n_chunks = 0
    decision: Optional[ExecutorDecision] = None
    if pending:
        if executor is None:
            # Legacy contract: the workers count alone picks the strategy
            # (CLI `--workers N` and every pre-executor caller).
            legacy_serial = workers <= 1
            decision = ExecutorDecision(
                executor="serial" if legacy_serial else "process",
                requested="legacy",
                workers=1 if legacy_serial else min(workers, len(pending)),
                reason=f"workers={workers} without an executor keeps the "
                       "legacy strategy",
                cpu_count=available_cpus(),
            )
        else:
            if (
                executor == "auto"
                and len(pending) > 1
                and available_cpus() > 1
                and estimate_grid_cost([pt for _, pt in pending]) is None
            ):
                # Cold cost model: evaluate the *median-weight* pending
                # point serially, timed, so the decision below runs
                # calibrated.  The heaviest point would pay the grid's
                # critical path before the pool even spawns; the lightest
                # measures mostly fixed overhead and inflates the
                # per-weight rate by orders of magnitude.
                by_weight = sorted(
                    range(len(pending)),
                    key=lambda i: point_weight(
                        pending[i][1].n, pending[i][1].b,
                        pending[i][1].with_measured,
                    ),
                )
                probe_pos = by_weight[len(by_weight) // 2]
                probe_idx, probe_point = pending[probe_pos]
                with tracer.span("sweep.probe", points=1):
                    t0_probe = time.perf_counter()
                    probe_summary = _evaluate_point(
                        probe_point, params, cost_model, store, uq
                    )
                    probe_s = time.perf_counter() - t0_probe
                observe_point_cost(
                    probe_point.n, probe_point.b,
                    probe_point.with_measured, probe_s,
                )
                finish_point(probe_idx, probe_point, probe_summary)
                pending = pending[:probe_pos] + pending[probe_pos + 1:]
            with tracer.span(
                "sweep.decide", requested=executor, points=len(pending)
            ):
                decision = decide_executor(
                    [pt for _, pt in pending], executor, workers,
                    traced=tracer.enabled,
                    store_attached=store is not None,
                    mp_context=mp_context,
                )
            tracer.count(f"sweep.decision.{decision.executor}")

    if pending and decision.executor == "serial":
        if _kernel_flags.enabled and not tracer.enabled and executor is not None:
            n_chunks = _evaluate_pending_batch(
                pending, params, cost_model, store, uq, finish_point
            )
        else:
            with tracer.span("sweep.chunk", chunk=0, points=len(pending)):
                for idx, point in pending:
                    t0_point = time.perf_counter()
                    summary = _evaluate_point(point, params, cost_model, store, uq)
                    observe_point_cost(
                        point.n, point.b, point.with_measured,
                        time.perf_counter() - t0_point,
                    )
                    finish_point(idx, point, summary)
            n_chunks = len(pending)
    elif pending and decision.executor == "thread":
        # Same chunking as the process pool, but the workers share this
        # process's trace/plan/memo caches and store handle; results are
        # applied on the main thread, so ordering logic is unchanged.
        if chunk_size:
            chunks = list(_chunked(pending, chunk_size))
        else:
            chunks = _weight_chunks(pending, decision.workers * 4)
        n_chunks = len(chunks)
        index_of = dict(pending)

        def _thread_chunk(chunk):
            if _kernel_flags.enabled:
                collected: list = []
                _evaluate_pending_batch(
                    chunk, params, cost_model, store, uq,
                    lambda idx, point, summary: collected.append((idx, summary)),
                )
                return collected
            return [
                (idx, _evaluate_point(point, params, cost_model, store, uq))
                for idx, point in chunk
            ]

        with ThreadPoolExecutor(max_workers=decision.workers) as tpool:
            futures = [tpool.submit(_thread_chunk, c) for c in chunks]
            for future in as_completed(futures):
                for idx, summary in future.result():
                    finish_point(idx, index_of[idx], summary)
    elif pending:
        eff_workers = min(decision.workers, len(pending))
        if chunk_size:
            chunks = list(_chunked(pending, chunk_size))
        else:
            chunks = _weight_chunks(pending, eff_workers * 4)
        store_dir = str(store.directory) if store is not None else None
        trace_doc = tracer.config.to_dict() if tracer.enabled else None
        parent_ctx = getattr(tracer, "context", None) if tracer.enabled else None
        ctx_doc = parent_ctx.to_dict() if parent_ctx is not None else None
        shard_dir = (
            Path(trace_shard_dir)
            if (trace_shard_dir is not None and tracer.enabled)
            else None
        )
        if shard_dir is not None:
            shard_dir.mkdir(parents=True, exist_ok=True)

        def _shard_path(chunk_no: int) -> Optional[str]:
            if shard_dir is None:
                return None
            return str(shard_dir / f"shard-chunk-{chunk_no:04d}.jsonl")

        payloads = [
            (store_dir, params, cost_model, uq, _kernel_flags.enabled,
             trace_doc, ctx_doc, _shard_path(chunk_no), chunk_no, chunk)
            for chunk_no, chunk in enumerate(chunks)
        ]
        n_chunks = len(payloads)
        index_of = dict(pending)
        chunk_rows: list = [None] * n_chunks
        chunk_metrics: list = [None] * n_chunks
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(processes=eff_workers) as pool:
            for chunk_no, chunk_result, rows, snap in pool.imap_unordered(
                _run_chunk, payloads
            ):
                chunk_rows[chunk_no] = rows
                chunk_metrics[chunk_no] = snap
                for idx, summary in chunk_result:
                    finish_point(idx, index_of[idx], summary)
        # Chunks are contiguous slices of ``pending`` in grid order, so
        # absorbing their event rows in chunk order reproduces exactly the
        # stream a serial sweep emits inline — completion order never shows.
        if tracer.enabled:
            for rows, snap in zip(chunk_rows, chunk_metrics):
                if rows:
                    tracer.absorb_rows(rows)
                if snap:
                    tracer.metrics.merge(snap)

    missing = [i for i, s in enumerate(summaries) if s is None]
    if missing:  # pragma: no cover - defensive: a worker dropped results
        raise RuntimeError(f"sweep lost results for point indices {missing}")

    wall_s = time.perf_counter() - t0
    tracer.observe("sweep.wall_s", wall_s)
    if executor is None:
        stats_workers = max(1, workers)
    else:
        stats_workers = decision.workers if decision is not None else 1
    stats = SweepStats(
        total=total,
        cached=cached,
        computed=total - cached,
        workers=stats_workers,
        chunks=n_chunks,
        wall_s=wall_s,
        executor=decision.executor if decision is not None else "serial",
        decision=decision.to_dict() if decision is not None else None,
    )
    return SweepResult(points=points, summaries=summaries, stats=stats)

"""Parallel sweep engine: paper-scale studies across worker processes.

The paper's evaluation is a grid study — every ``(n, b, layout, seed)``
point of Figures 7-9 — and growing the reproduction to larger grids
means the serial point-by-point loop no longer cuts it.  This package
fans a validated grid (:func:`expand_grid`) out across a process pool
(:func:`run_sweep`) with chunked scheduling, deterministic result
ordering, and safe coordination with a shared
:class:`repro.experiments.ExperimentStore` (atomic per-entry writes,
advisory locks, resume-by-short-circuit).

Quick start::

    from repro.core import MEIKO_CS2, CalibratedCostModel
    from repro.sweep import expand_grid, run_sweep

    grid = expand_grid(480, [20, 30, 40, 48, 60], ["diagonal", "stripped"])
    result = run_sweep(grid, MEIKO_CS2, CalibratedCostModel(),
                       workers=4, store=".repro/store")
    for point, summary in zip(result.points, result.summaries):
        print(point.describe(), summary.pred_standard_total)

The CLI front-end is ``python -m repro sweep [--workers auto|N]
[--executor auto|serial|thread|process] [--store DIR --resume]``; the
differential test suite pins ``run_sweep`` results to the serial
:func:`repro.core.predictor.run_ge_point` bit for bit, under every
executor.  ``--workers auto`` (the default) lets a calibrated cost
model of the sweep itself choose the strategy — see
:mod:`repro.sweep.executor`.
"""

from .batch import BatchItem, BatchResult, run_point_batch
from .executor import EXECUTORS, ExecutorDecision, decide_executor
from .points import SweepPoint, expand_grid
from .runner import SweepResult, SweepStats, run_sweep

__all__ = [
    "SweepPoint",
    "expand_grid",
    "SweepResult",
    "SweepStats",
    "run_sweep",
    "BatchItem",
    "BatchResult",
    "run_point_batch",
    "EXECUTORS",
    "ExecutorDecision",
    "decide_executor",
]

"""Communication-pattern library, including the paper's sample pattern.

:func:`sample_pattern` reconstructs the Figure 3 pattern: ten processors
on several anti-diagonals of the matrix, as encountered in one Gaussian
Elimination communication step, every message the same length (1160 bytes
under our OCR reconstruction — see DESIGN.md).  The exact figure could not
be recovered glyph-for-glyph, so the edge set below is built to satisfy
everything the paper's prose says about it:

* it is a DAG spanning several wavefront diagonals,
* one processor (P3 here) receives two messages — which it handles before
  sending its second message (receive priority, section 4.1),
* in the worst-case schedule, one processor receives two concurrently
  arriving messages, the second delayed by the gap requirement, and
  several processors finish simultaneously (section 4.2).

The generator functions provide classic patterns used by the tests,
benchmarks and examples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.message import CommPattern
from ..layouts.base import DataLayout

__all__ = [
    "SAMPLE_PATTERN_EDGES",
    "SAMPLE_MESSAGE_BYTES",
    "sample_pattern",
    "ring_pattern",
    "all_to_all_pattern",
    "broadcast_pattern",
    "hypercube_exchange_pattern",
    "random_pattern",
    "ge_wavefront_pattern",
]

#: reconstructed Figure 3 edge set (10 processors, see module docstring)
SAMPLE_PATTERN_EDGES: tuple[tuple[int, int], ...] = (
    (0, 3),
    (1, 3),
    (1, 4),
    (2, 4),
    (2, 5),
    (3, 5),
    (3, 6),
    (4, 6),
    (4, 7),
    (5, 7),
    (5, 8),
    (6, 8),
    (6, 9),
    (7, 9),
)

#: message length of the sample pattern (paper: "11[60] bytes each")
SAMPLE_MESSAGE_BYTES = 1160


def sample_pattern(size: int = SAMPLE_MESSAGE_BYTES) -> CommPattern:
    """The Figure 3 sample pattern with uniform message length ``size``."""
    return CommPattern(10, edges=SAMPLE_PATTERN_EDGES, default_size=size)


def ring_pattern(num_procs: int, size: int = 1) -> CommPattern:
    """Each processor sends to its right neighbour (a directed cycle)."""
    if num_procs < 2:
        raise ValueError("a ring needs >= 2 processors")
    return CommPattern(
        num_procs, edges=[(p, (p + 1) % num_procs) for p in range(num_procs)], default_size=size
    )


def all_to_all_pattern(num_procs: int, size: int = 1) -> CommPattern:
    """Every processor sends one message to every other processor."""
    edges = [
        (src, dst)
        for src in range(num_procs)
        for dst in range(num_procs)
        if src != dst
    ]
    return CommPattern(num_procs, edges=edges, default_size=size)


def broadcast_pattern(num_procs: int, root: int = 0, size: int = 1) -> CommPattern:
    """Naive root-sends-to-all broadcast."""
    if not (0 <= root < num_procs):
        raise ValueError("root out of range")
    edges = [(root, dst) for dst in range(num_procs) if dst != root]
    return CommPattern(num_procs, edges=edges, default_size=size)


def hypercube_exchange_pattern(dim: int, size: int = 1) -> CommPattern:
    """Pairwise exchange along every hypercube dimension (2**dim procs)."""
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    num_procs = 1 << dim
    pattern = CommPattern(num_procs)
    for d in range(dim):
        for p in range(num_procs):
            pattern.add(p, p ^ (1 << d), size)
    return pattern


def random_pattern(
    num_procs: int,
    num_messages: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    size_range: tuple[int, int] = (1, 4096),
    allow_local: bool = False,
) -> CommPattern:
    """A random pattern for fuzzing the simulators."""
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    if num_procs < 2 and not allow_local:
        raise ValueError("need >= 2 processors for remote messages")
    lo, hi = size_range
    pattern = CommPattern(num_procs)
    for _ in range(num_messages):
        src = int(rng.integers(num_procs))
        dst = int(rng.integers(num_procs))
        if not allow_local:
            while dst == src:
                dst = int(rng.integers(num_procs))
        pattern.add(src, dst, int(rng.integers(lo, hi + 1)))
    return pattern


def ge_wavefront_pattern(
    layout: DataLayout, diag: int, block_bytes: int
) -> CommPattern:
    """One GE wavefront communication step extracted as a standalone pattern.

    The blocks on anti-diagonal ``diag`` each send to their right and down
    neighbours — the shape Figure 3 sketches.
    """
    pattern = CommPattern(layout.num_procs)
    for i, j in layout.antidiagonal(diag):
        me = layout.owner(i, j)
        if j + 1 < layout.nb:
            pattern.add(me, layout.owner(i, j + 1), block_bytes)
        if i + 1 < layout.nb:
            pattern.add(me, layout.owner(i + 1, j), block_bytes)
    return pattern

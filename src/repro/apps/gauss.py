"""Blocked parallel Gaussian Elimination (paper section 5).

The parallel GE without pivoting is based on the observation that each
iteration of the sequential algorithm can be regarded as a diagonal wave
traversing the matrix from the upper-left to the lower-right corner, so
several (anti-)diagonals of blocks are active at the same time [Kumar et
al.].  The blocked version raises the granularity to ``b x b`` basic
blocks operated on by the four basic operations of
:mod:`repro.blockops.ops`.

Wavefront schedule
------------------
With ``nb = n / b`` blocks per side, iteration ``k``'s wave reaches block
``(i, j)`` (``i, j >= k``) at *global step* ``t = 3k + (i-k) + (j-k)``:

* iteration ``k`` starts (Op1 at ``(k,k)``) three steps after iteration
  ``k-1`` started — one step after Op4 of iteration ``k-1`` finished on
  ``(k,k)``;
* each step is one computation phase followed by one communication phase,
  matching the paper's alternating non-overlapping restriction.

Data movement per active block (systolic, neighbour-to-neighbour):

* ``(k,k)`` after Op1 sends ``L^-1`` right to ``(k,k+1)`` and ``U^-1``
  down to ``(k+1,k)``;
* ``(k,j)`` after Op2 forwards ``L^-1`` right and sends its transformed
  row block down;
* ``(i,k)`` after Op3 forwards ``U^-1`` down and sends its transformed
  column block right;
* ``(i,j)`` after Op4 forwards the column block right and the row block
  down.

Messages between blocks owned by the same processor are *local* — real
executions do them as memory copies; the simple LogGP prediction skips
them (paper section 6.3) while the machine emulator charges a copy cost.

This module provides both the **trace generator** (consumed by predictor
and emulator) and a **numerical executor** that actually factorises a
matrix with the four basic ops, verified against ``L @ U = A``.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..blockops import ops as bops
from ..core.message import CommPattern
from ..layouts.base import DataLayout
from ..trace.program import ProgramTrace, Step, Work

__all__ = [
    "GEConfig",
    "build_ge_trace",
    "execute_blocked_ge",
    "verify_lu",
    "random_spd_like_matrix",
    "PAPER_MATRIX_N",
    "PAPER_BLOCK_SIZES",
]

#: the paper's matrix order (reconstructed; see DESIGN.md)
PAPER_MATRIX_N = 960

#: the paper's 14 block sizes (reconstructed; all divide 960)
PAPER_BLOCK_SIZES = (10, 12, 15, 20, 24, 30, 40, 48, 60, 64, 80, 96, 120, 160)


@dataclass(frozen=True)
class GEConfig:
    """One GE experiment configuration."""

    n: int
    b: int
    layout: DataLayout

    def __post_init__(self) -> None:
        if self.n < 1 or self.b < 1:
            raise ValueError("matrix and block sizes must be >= 1")
        if self.n % self.b:
            raise ValueError(f"block size {self.b} does not divide n={self.n}")
        if self.layout.nb != self.n // self.b:
            raise ValueError(
                f"layout grid {self.layout.nb} != n/b = {self.n // self.b}"
            )

    @property
    def nb(self) -> int:
        """Blocks per matrix side."""
        return self.n // self.b


def _op_of(i: int, j: int, k: int) -> str:
    if i == k and j == k:
        return "op1"
    if i == k:
        return "op2"
    if j == k:
        return "op3"
    return "op4"


def build_ge_trace(config: GEConfig) -> ProgramTrace:
    """Generate the wavefront GE program trace for one configuration.

    The trace has ``3*(nb-1) + 1`` steps; step ``t`` holds the computation
    of every block ``(i, j, k)`` with ``3k + (i-k) + (j-k) == t`` and the
    communication pattern of the data those blocks emit.
    """
    nb = config.nb
    b = config.b
    layout = config.layout
    owner = layout.owner
    block_bytes = b * b * 8
    factor_bytes = b * (b + 1) // 2 * 8  # one triangular factor

    trace = ProgramTrace(num_procs=layout.num_procs)
    last_t = 3 * (nb - 1)
    for t in range(last_t + 1):
        work: dict[int, list[Work]] = {}
        pattern = CommPattern(layout.num_procs)
        # iterations whose wave is alive at step t
        k_hi = min(t // 3, nb - 1)
        for k in range(k_hi + 1):
            s = t - 3 * k
            if s > 2 * (nb - 1 - k):
                continue
            # blocks (i, j) with i,j >= k and (i-k) + (j-k) == s
            di_lo = max(0, s - (nb - 1 - k))
            di_hi = min(s, nb - 1 - k)
            for di in range(di_lo, di_hi + 1):
                i = k + di
                j = k + (s - di)
                me = owner(i, j)
                op = _op_of(i, j, k)
                work.setdefault(me, []).append(
                    Work(op=op, b=b, block=(i, j), iteration=k)
                )
                # outgoing data (systolic forwarding)
                if op == "op1":
                    if j + 1 < nb:
                        pattern.add(me, owner(i, j + 1), factor_bytes)
                    if i + 1 < nb:
                        pattern.add(me, owner(i + 1, j), factor_bytes)
                elif op == "op2":
                    if j + 1 < nb:
                        pattern.add(me, owner(i, j + 1), factor_bytes)
                    if i + 1 < nb:
                        pattern.add(me, owner(i + 1, j), block_bytes)
                elif op == "op3":
                    if i + 1 < nb:
                        pattern.add(me, owner(i + 1, j), factor_bytes)
                    if j + 1 < nb:
                        pattern.add(me, owner(i, j + 1), block_bytes)
                else:  # op4 forwards both streams
                    if j + 1 < nb:
                        pattern.add(me, owner(i, j + 1), block_bytes)
                    if i + 1 < nb:
                        pattern.add(me, owner(i + 1, j), block_bytes)
        trace.add_step(Step(work=work, pattern=pattern, label=f"t={t}"))

    trace.meta.update(
        {
            "app": "gauss",
            "n": config.n,
            "b": b,
            "nb": nb,
            "layout": layout.name,
            "num_procs": layout.num_procs,
            "block_bytes": block_bytes,
            "factor_bytes": factor_bytes,
        }
    )
    return trace


def random_spd_like_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A random diagonally dominant matrix (safe for GE without pivoting)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    return a


def execute_blocked_ge(
    matrix: np.ndarray, b: int
) -> tuple[np.ndarray, np.ndarray]:
    """Numerically run the blocked GE with the four basic operations.

    Returns ``(L, U)`` with ``L`` unit lower triangular and ``U`` upper
    triangular such that ``L @ U`` equals the input (up to round-off).
    This executes the same arithmetic the distributed wavefront performs,
    in dependency order, validating that the trace's operation set is a
    correct factorisation (paper section 5.1's basic-op decomposition).
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if n % b:
        raise ValueError(f"block size {b} does not divide n={n}")
    nb = n // b
    a = np.array(matrix, dtype=np.float64, copy=True)

    def blk(i: int, j: int) -> np.ndarray:
        return a[i * b : (i + 1) * b, j * b : (j + 1) * b]

    lower = np.eye(n)
    upper = np.zeros((n, n))

    for k in range(nb):
        factors = bops.op1_factor(blk(k, k))  # Op1
        lower[k * b : (k + 1) * b, k * b : (k + 1) * b] = factors.lower
        upper[k * b : (k + 1) * b, k * b : (k + 1) * b] = factors.upper
        for j in range(k + 1, nb):  # Op2 across the pivot row
            u_kj = bops.op2_row(factors.lower_inv, blk(k, j))
            blk(k, j)[:] = u_kj
            upper[k * b : (k + 1) * b, j * b : (j + 1) * b] = u_kj
        for i in range(k + 1, nb):  # Op3 down the pivot column
            l_ik = bops.op3_col(blk(i, k), factors.upper_inv)
            blk(i, k)[:] = l_ik
            lower[i * b : (i + 1) * b, k * b : (k + 1) * b] = l_ik
        for i in range(k + 1, nb):  # Op4 on the trailing submatrix
            for j in range(k + 1, nb):
                blk(i, j)[:] = bops.op4_update(blk(i, j), blk(i, k), blk(k, j))

    return lower, upper


def verify_lu(
    matrix: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rtol: float = 1e-8,
    atol: float = 1e-6,
) -> bool:
    """Check ``L @ U == A`` (within tolerance) and triangularity."""
    n = matrix.shape[0]
    if not np.allclose(lower, np.tril(lower), atol=atol):
        return False
    if not np.allclose(np.diag(lower), np.ones(n), atol=atol):
        return False
    if not np.allclose(upper, np.triu(upper), atol=atol):
        return False
    return np.allclose(lower @ upper, matrix, rtol=rtol, atol=atol)

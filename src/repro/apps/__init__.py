"""Applications in the paper's restricted algorithm class (section 2).

Gaussian Elimination is the paper's case study; Cannon's algorithm is the
paper's other named in-class example; the Jacobi stencil demonstrates a
non-GE basic-operation set.  :mod:`repro.apps.patterns` holds the Figure 3
sample pattern and generic pattern generators.
"""

from .cannon import CannonConfig, build_cannon_trace, cannon_grid_side, execute_cannon
from .gauss import (
    PAPER_BLOCK_SIZES,
    PAPER_MATRIX_N,
    GEConfig,
    build_ge_trace,
    execute_blocked_ge,
    random_spd_like_matrix,
    verify_lu,
)
from .patterns import (
    SAMPLE_MESSAGE_BYTES,
    SAMPLE_PATTERN_EDGES,
    all_to_all_pattern,
    broadcast_pattern,
    ge_wavefront_pattern,
    hypercube_exchange_pattern,
    random_pattern,
    ring_pattern,
    sample_pattern,
)
from .stencil import (
    StencilConfig,
    build_stencil_trace,
    execute_jacobi,
    stencil_cost_table,
)
from .triangular import (
    TriangularConfig,
    build_trsv_trace,
    execute_trsv,
    trsv_cost_table,
)

__all__ = [
    "GEConfig",
    "build_ge_trace",
    "execute_blocked_ge",
    "verify_lu",
    "random_spd_like_matrix",
    "PAPER_MATRIX_N",
    "PAPER_BLOCK_SIZES",
    "CannonConfig",
    "build_cannon_trace",
    "execute_cannon",
    "cannon_grid_side",
    "StencilConfig",
    "build_stencil_trace",
    "execute_jacobi",
    "stencil_cost_table",
    "sample_pattern",
    "SAMPLE_PATTERN_EDGES",
    "SAMPLE_MESSAGE_BYTES",
    "ring_pattern",
    "all_to_all_pattern",
    "broadcast_pattern",
    "hypercube_exchange_pattern",
    "random_pattern",
    "ge_wavefront_pattern",
    "TriangularConfig",
    "build_trsv_trace",
    "execute_trsv",
    "trsv_cost_table",
]

"""Systolic Jacobi stencil (third in-class application).

A 5-point Jacobi relaxation on an ``n x n`` grid, row-block partitioned
over ``P`` processors, iterated ``T`` times.  Each iteration is one
computation step (every processor relaxes its strip) followed by one
communication step (halo rows exchanged with the two neighbours) —
squarely inside the paper's restricted class: oblivious, equal-sized
blocks, alternating non-overlapping phases.

The stencil defines its own basic operation, ``"jacobi"``, priced by
:func:`stencil_cost_table` per strip height — demonstrating that the
prediction framework is not GE-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.costmodel import TableCostModel
from ..core.message import CommPattern
from ..trace.program import ProgramTrace, Step, Work

__all__ = ["StencilConfig", "build_stencil_trace", "execute_jacobi", "stencil_cost_table"]

#: µs per relaxed grid point (5-point stencil, mid-90s node stand-in)
POINT_COST_US = 0.03
#: fixed per-sweep overhead, µs
SWEEP_OVERHEAD_US = 40.0


@dataclass(frozen=True)
class StencilConfig:
    """One Jacobi experiment: ``n x n`` grid, ``P`` row strips, ``T`` sweeps."""

    n: int
    num_procs: int
    iterations: int

    def __post_init__(self) -> None:
        if self.n < self.num_procs:
            raise ValueError("grid must have at least one row per processor")
        if self.n % self.num_procs:
            raise ValueError(
                f"processor count {self.num_procs} does not divide n={self.n}"
            )
        if self.iterations < 1:
            raise ValueError("need at least one iteration")

    @property
    def rows_per_proc(self) -> int:
        """Strip height."""
        return self.n // self.num_procs


def stencil_cost_table(n: int, strip_heights: Sequence[int]) -> TableCostModel:
    """Cost table pricing the ``"jacobi"`` op for the given strip heights.

    The ``b`` argument of the op is the strip height; a sweep relaxes
    ``b * n`` points.
    """
    return TableCostModel(
        {
            "jacobi": {
                h: POINT_COST_US * h * n + SWEEP_OVERHEAD_US for h in strip_heights
            }
        }
    )


def build_stencil_trace(config: StencilConfig) -> ProgramTrace:
    """Trace of ``T`` Jacobi sweeps with halo exchange between sweeps."""
    p = config.num_procs
    h = config.rows_per_proc
    halo_bytes = config.n * 8  # one grid row of float64
    trace = ProgramTrace(num_procs=p)

    for sweep in range(config.iterations):
        work = {
            proc: [Work(op="jacobi", b=h, block=(proc, 0), iteration=sweep)]
            for proc in range(p)
        }
        pattern = CommPattern(p)
        if sweep < config.iterations - 1:  # last sweep needs no exchange
            for proc in range(p):
                if proc > 0:
                    pattern.add(proc, proc - 1, halo_bytes)
                if proc < p - 1:
                    pattern.add(proc, proc + 1, halo_bytes)
        trace.add_step(Step(work=work, pattern=pattern, label=f"sweep {sweep}"))

    trace.meta.update(
        {
            "app": "stencil",
            "n": config.n,
            "num_procs": p,
            "rows_per_proc": h,
            "iterations": config.iterations,
            "halo_bytes": halo_bytes,
        }
    )
    return trace


def execute_jacobi(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Numerically run the 5-point Jacobi relaxation (boundary held fixed)."""
    if grid.ndim != 2:
        raise ValueError("grid must be 2-D")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    cur = np.array(grid, dtype=np.float64, copy=True)
    for _ in range(iterations):
        nxt = cur.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
        )
        cur = nxt
    return cur

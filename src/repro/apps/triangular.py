"""Parallel triangular solve by substitution (paper reference [16]).

Santos, "Solving triangular linear systems in parallel using
substitution", is the paper's neighbouring case study of LogP-analysed
regular computation.  The blocked column-oriented forward substitution
solves ``L x = rhs`` for unit-lower-triangular ``L``:

for each block column ``k``: the owner of diagonal block ``(k,k)`` solves
the small triangular system for ``x_k`` and broadcasts it down its
column; every owner of a block ``(i, k)``, ``i > k``, computes the update
``rhs_i -= L[i,k] @ x_k`` and the owner of ``(k+1, k+1)`` proceeds.

This is a *pipelined* wavefront with far less parallelism than GE (one
block column at a time) — a useful contrast app: communication latency,
not bandwidth, dominates; the predictor should show speedup saturating
at low processor counts.

Basic ops: ``trsolve`` (diagonal solve, ~b^2 flops) and ``update``
(block times vector, 2 b^2 flops), priced by :func:`trsv_cost_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.costmodel import TableCostModel
from ..core.message import CommPattern
from ..layouts.base import DataLayout
from ..trace.program import ProgramTrace, Step, Work

__all__ = ["TriangularConfig", "build_trsv_trace", "execute_trsv", "trsv_cost_table"]

#: µs per flop of the substitution kernels (same node stand-in as blockops)
TRSV_FLOP_US = 0.01
#: per-call overhead, µs
TRSV_CALL_US = 30.0


@dataclass(frozen=True)
class TriangularConfig:
    """A blocked forward-substitution run: ``n x n`` system, ``b x b`` blocks."""

    n: int
    b: int
    layout: DataLayout

    def __post_init__(self) -> None:
        if self.n < 1 or self.b < 1:
            raise ValueError("sizes must be >= 1")
        if self.n % self.b:
            raise ValueError(f"block size {self.b} does not divide n={self.n}")
        if self.layout.nb != self.n // self.b:
            raise ValueError("layout grid does not match n/b")

    @property
    def nb(self) -> int:
        """Blocks per side."""
        return self.n // self.b


def trsv_cost_table(block_sizes: Sequence[int]) -> TableCostModel:
    """Price the two substitution ops for the given block sizes."""
    return TableCostModel(
        {
            "trsolve": {b: TRSV_FLOP_US * b * b + TRSV_CALL_US for b in block_sizes},
            "update": {b: TRSV_FLOP_US * 2 * b * b + TRSV_CALL_US for b in block_sizes},
        }
    )


def build_trsv_trace(config: TriangularConfig) -> ProgramTrace:
    """Trace of the blocked forward substitution.

    Step ``2k``: the owner of ``(k,k)`` solves for ``x_k``; communication
    sends ``x_k`` to every owner of a block in column ``k`` below the
    diagonal (skipping duplicates — one message per distinct processor).
    Step ``2k+1``: those owners apply their updates; the owner of block
    ``(k+1, k)`` sends the updated ``rhs_{k+1}`` segment to the owner of
    ``(k+1, k+1)`` for the next solve.
    """
    nb, b = config.nb, config.b
    owner = config.layout.owner
    x_bytes = b * 8
    trace = ProgramTrace(num_procs=config.layout.num_procs)

    for k in range(nb):
        diag = owner(k, k)
        solve = Step(
            work={diag: [Work(op="trsolve", b=b, block=(k, k), iteration=k)]},
            label=f"solve k={k}",
        )
        pattern = CommPattern(config.layout.num_procs)
        targets = {owner(i, k) for i in range(k + 1, nb)}
        for dst in sorted(targets):
            pattern.add(diag, dst, x_bytes)
        solve.pattern = pattern
        trace.add_step(solve)

        if k + 1 < nb:
            work: dict[int, list[Work]] = {}
            for i in range(k + 1, nb):
                p = owner(i, k)
                work.setdefault(p, []).append(
                    Work(op="update", b=b, block=(i, k), iteration=k)
                )
            pattern = CommPattern(config.layout.num_procs)
            pattern.add(owner(k + 1, k), owner(k + 1, k + 1), x_bytes)
            trace.add_step(Step(work=work, pattern=pattern, label=f"update k={k}"))

    trace.meta.update(
        {
            "app": "trsv",
            "n": config.n,
            "b": b,
            "nb": nb,
            "layout": config.layout.name,
            "num_procs": config.layout.num_procs,
        }
    )
    return trace


def execute_trsv(lower: np.ndarray, rhs: np.ndarray, b: int) -> np.ndarray:
    """Numerically run the blocked forward substitution.

    ``lower`` must be unit lower triangular.  Returns ``x`` with
    ``lower @ x == rhs`` (verified by the tests against
    ``numpy.linalg.solve``).
    """
    n = lower.shape[0]
    if lower.shape != (n, n):
        raise ValueError("matrix must be square")
    if rhs.shape != (n,):
        raise ValueError("rhs must be a vector of matching length")
    if n % b:
        raise ValueError(f"block size {b} does not divide n={n}")
    if not np.allclose(np.diag(lower), 1.0):
        raise ValueError("matrix must be unit lower triangular")
    nb = n // b
    x = np.array(rhs, dtype=np.float64, copy=True)
    for k in range(nb):
        sl_k = slice(k * b, (k + 1) * b)
        l_kk = lower[sl_k, sl_k]
        # forward-substitute within the diagonal block (unit diagonal)
        for row in range(1, b):
            x[k * b + row] -= l_kk[row, :row] @ x[k * b : k * b + row]
        for i in range(k + 1, nb):
            sl_i = slice(i * b, (i + 1) * b)
            x[sl_i] -= lower[sl_i, sl_k] @ x[sl_k]
    return x

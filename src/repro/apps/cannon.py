"""Cannon's matrix-multiplication algorithm (paper section 2's example).

The paper names Cannon's algorithm as a representative member of the
restricted class it analyses (systolic matrix algorithms with
input-independent communication and alternating comp/comm steps).  We
implement it both as a trace generator for the predictor/emulator and as a
numerical executor.

Algorithm: ``q x q`` processors each own one ``b x b`` block of A and B
(``b = n / q``).  After an initial skew (row ``i`` of A rotated left by
``i``, column ``j`` of B rotated up by ``j``), the algorithm performs
``q`` rounds of: multiply-accumulate the local blocks (our ``op4`` basic
operation, negated accumulate), then rotate A left by one and B up by one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.message import CommPattern
from ..trace.program import ProgramTrace, Step, Work

__all__ = ["CannonConfig", "build_cannon_trace", "execute_cannon", "cannon_grid_side"]


def cannon_grid_side(num_procs: int) -> int:
    """The grid side ``q`` with ``q * q == num_procs`` (raises otherwise)."""
    q = int(math.isqrt(num_procs))
    if q * q != num_procs:
        raise ValueError(f"Cannon requires a square processor count, got {num_procs}")
    return q


@dataclass(frozen=True)
class CannonConfig:
    """One Cannon experiment: ``n x n`` matrices on ``q*q`` processors."""

    n: int
    num_procs: int

    def __post_init__(self) -> None:
        q = cannon_grid_side(self.num_procs)
        if self.n % q:
            raise ValueError(f"grid side {q} does not divide n={self.n}")

    @property
    def q(self) -> int:
        """Processor grid side."""
        return cannon_grid_side(self.num_procs)

    @property
    def b(self) -> int:
        """Block size per processor."""
        return self.n // self.q


def _pid(q: int, r: int, c: int) -> int:
    return (r % q) * q + (c % q)


def build_cannon_trace(config: CannonConfig) -> ProgramTrace:
    """Trace of Cannon's algorithm: skew, then q multiply+rotate rounds."""
    q, b = config.q, config.b
    block_bytes = b * b * 8
    trace = ProgramTrace(num_procs=config.num_procs)

    # Initial skew: A(i,j) -> (i, j-i); B(i,j) -> (i-j, j).
    skew = CommPattern(config.num_procs)
    for r in range(q):
        for c in range(q):
            src = _pid(q, r, c)
            skew.add(src, _pid(q, r, c - r), block_bytes)  # A left by r
            skew.add(src, _pid(q, r - c, c), block_bytes)  # B up by c
    trace.add_step(Step(work={}, pattern=skew, label="skew"))

    # q rounds of multiply-accumulate then unit rotation.
    for step in range(q):
        work = {
            _pid(q, r, c): [Work(op="op4", b=b, block=(r, c), iteration=step)]
            for r in range(q)
            for c in range(q)
        }
        pattern = CommPattern(config.num_procs)
        if step < q - 1:  # the last round needs no rotation
            for r in range(q):
                for c in range(q):
                    src = _pid(q, r, c)
                    pattern.add(src, _pid(q, r, c - 1), block_bytes)  # A left
                    pattern.add(src, _pid(q, r - 1, c), block_bytes)  # B up
        trace.add_step(Step(work=work, pattern=pattern, label=f"round {step}"))

    trace.meta.update(
        {
            "app": "cannon",
            "n": config.n,
            "b": b,
            "q": q,
            "num_procs": config.num_procs,
            "block_bytes": block_bytes,
        }
    )
    return trace


def execute_cannon(a: np.ndarray, b_mat: np.ndarray, num_procs: int) -> np.ndarray:
    """Numerically run Cannon's algorithm; returns ``a @ b_mat``.

    Simulates the block rotations explicitly (each round only multiplies
    co-resident blocks), validating the trace's communication structure.
    """
    n = a.shape[0]
    if a.shape != (n, n) or b_mat.shape != (n, n):
        raise ValueError("matrices must be square and equally sized")
    q = cannon_grid_side(num_procs)
    if n % q:
        raise ValueError(f"grid side {q} does not divide n={n}")
    s = n // q

    def blk(m: np.ndarray, r: int, c: int) -> np.ndarray:
        return m[r * s : (r + 1) * s, c * s : (c + 1) * s]

    # local copies with the initial skew applied
    a_loc = {(r, c): blk(a, r, (c + r) % q).copy() for r in range(q) for c in range(q)}
    b_loc = {(r, c): blk(b_mat, (r + c) % q, c).copy() for r in range(q) for c in range(q)}
    c_loc = {(r, c): np.zeros((s, s)) for r in range(q) for c in range(q)}

    for _ in range(q):
        for r in range(q):
            for c in range(q):
                c_loc[(r, c)] += a_loc[(r, c)] @ b_loc[(r, c)]
        a_loc = {(r, c): a_loc[(r, (c + 1) % q)] for r in range(q) for c in range(q)}
        b_loc = {(r, c): b_loc[((r + 1) % q, c)] for r in range(q) for c in range(q)}

    out = np.zeros((n, n))
    for r in range(q):
        for c in range(q):
            blk(out, r, c)[:] = c_loc[(r, c)]
    return out

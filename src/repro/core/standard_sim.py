"""The standard LogGP communication-simulation algorithm (paper Figure 2).

Given a communication pattern and per-processor start clocks, determine the
sequence of send and receive operations each processor performs, such that:

* the gap rules of Figure 1 hold between consecutive operations,
* available messages are sent as soon as possible,
* **receives have priority over sends** — whenever a processor wants to
  send while at least one message is waiting to be received, the receive is
  performed first (Split-C active-message semantics),
* ties between processors with equal current time break randomly (seeded).

The algorithm keeps, per processor, a FIFO queue of messages to send (in
program order) and a priority queue of in-flight messages ordered by
arrival time.  The main loop repeatedly picks the processor with the
minimum current time among those that still want to send, and lets it
perform whichever of {next send, earliest receive} can *start* earlier —
with the strict comparison giving receives priority on ties.  Once all
sends are done, every processor drains its receive queue.

Self-messages are local memory transfers in real execution and are
deliberately excluded here (paper section 6.3); they are reported in
:attr:`SimulationResult.skipped_local`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..kernel import flags as _kernel_flags
from ..obs.events import get_tracer
from .events import CommEvent, StepTimeline
from .loggp import LogGPParameters, OpKind
from .message import CommPattern, Message

__all__ = ["SimulationResult", "simulate_standard", "StandardSimulator"]


@dataclass
class SimulationResult:
    """Outcome of one communication-step simulation."""

    timeline: StepTimeline
    #: per-processor clock after the step (end of each processor's last op)
    ctimes: dict[int, float]
    #: self-messages excluded from the LogGP simulation
    skipped_local: tuple[Message, ...] = ()

    @property
    def completion_time(self) -> float:
        """Completion time of the step (max over processors)."""
        return self.timeline.completion_time

    def elapsed(self, start_times: Optional[Mapping[int, float]] = None) -> float:
        """Step duration relative to the earliest start clock."""
        starts = start_times if start_times is not None else self.timeline.start_times
        base = min(starts.values(), default=0.0) if starts else 0.0
        return self.completion_time - base


class _ProcState:
    """Mutable per-processor simulation state."""

    __slots__ = ("ctime", "last_kind", "send_queue", "recv_heap")

    def __init__(self, ctime: float, sends: tuple[Message, ...]):
        self.ctime = ctime
        self.last_kind: Optional[OpKind] = None
        self.send_queue: deque[Message] = deque(sends)
        # entries: (arrival_time, uid, Message)
        self.recv_heap: list[tuple[float, int, Message]] = []


class StandardSimulator:
    """Reusable simulator object (exposes the same algorithm as a class).

    Useful when many steps are simulated with the same parameters; the
    :class:`repro.core.program_sim.ProgramSimulator` drives one of these.
    """

    def __init__(self, params: LogGPParameters, rng: Optional[np.random.Generator] = None):
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(
        self,
        pattern: CommPattern,
        start_times: Optional[Mapping[int, float]] = None,
    ) -> SimulationResult:
        """Simulate one communication step; see module docstring."""
        return _simulate(self.params, pattern, start_times, self.rng)


def simulate_standard(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> SimulationResult:
    """Functional entry point for the Figure 2 algorithm.

    Parameters
    ----------
    params:
        LogGP machine parameters.
    pattern:
        The communication pattern of this step.
    start_times:
        Per-processor clocks at the start of the step (missing ids start
        at 0); processors not mentioned and not in the pattern are ignored.
    rng, seed:
        Randomness for tie-breaking; ``rng`` wins if both are given.
    """
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    return _simulate(params, pattern, start_times, rng)


def _simulate(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> SimulationResult:
    if _kernel_flags.enabled:
        from ..kernel.fastsim import simulate_standard_fast

        return simulate_standard_fast(params, pattern, start_times, rng)
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()

    procs = sorted(
        {m.src for m in remote} | {m.dst for m in remote} | set(starts)
    )
    state: dict[int, _ProcState] = {}
    for p in procs:
        sends = tuple(m for m in remote if m.src == p)
        state[p] = _ProcState(starts.get(p, 0.0), sends)

    timeline = StepTimeline(params=params, start_times={p: starts.get(p, 0.0) for p in procs})

    def do_send(proc: int) -> None:
        st = state[proc]
        msg = st.send_queue.popleft()
        start = params.earliest_start(st.last_kind, st.ctime, OpKind.SEND)
        duration = params.send_duration(msg.size)
        timeline.add(CommEvent(proc, OpKind.SEND, start, duration, msg))
        st.ctime = start + duration
        st.last_kind = OpKind.SEND
        arrival = start + duration + params.L
        heapq.heappush(state[msg.dst].recv_heap, (arrival, msg.uid, msg))

    def do_recv(proc: int) -> None:
        st = state[proc]
        arrival, _, msg = heapq.heappop(st.recv_heap)
        earliest = params.earliest_start(st.last_kind, st.ctime, OpKind.RECV)
        start = max(arrival, earliest)
        duration = params.recv_duration(msg.size)
        timeline.add(
            CommEvent(proc, OpKind.RECV, start, duration, msg, arrival=arrival)
        )
        st.ctime = start + duration
        st.last_kind = OpKind.RECV

    # Main loop: processors that still want to send, in ctime order.
    while True:
        senders = [p for p in procs if state[p].send_queue]
        if not senders:
            break
        min_ct = min(state[p].ctime for p in senders)
        tied = [p for p in senders if state[p].ctime == min_ct]
        min_proc = tied[0] if len(tied) == 1 else int(rng.choice(tied))
        st = state[min_proc]

        if st.recv_heap:
            arrival = st.recv_heap[0][0]
            start_recv = max(
                arrival, params.earliest_start(st.last_kind, st.ctime, OpKind.RECV)
            )
        else:
            start_recv = float("inf")
        start_send = params.earliest_start(st.last_kind, st.ctime, OpKind.SEND)

        # Strict '<' gives receives priority over sends on equal start times.
        if start_send < start_recv:
            do_send(min_proc)
        else:
            do_recv(min_proc)

    # Drain: every processor performs its remaining receives.
    for p in procs:
        while state[p].recv_heap:
            do_recv(p)

    ctimes = {p: state[p].ctime for p in procs}
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.comm_steps.standard")
        tracer.emit_comm_step(timeline, ctimes, algo="standard")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)

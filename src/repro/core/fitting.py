"""LogGP parameter estimation from micro-benchmarks.

The LogGP parameters of a real machine are not given — they are measured
(the paper's parameters are "close to the Meiko CS-2" because somebody
ran micro-benchmarks; cf. Culler et al., "LogP Performance Assessment of
Fast Network Interfaces").  This module implements that assessment loop
against any *runner*: a callable that executes a communication pattern
and reports per-processor timings — the machine emulator in this
repository, a real machine in the field.

Micro-benchmarks (classic shapes):

* **send cost**: one k-byte message; the sender is engaged
  ``o + (k-1) G`` — two sizes separate ``o`` from ``G``;
* **one-way transfer**: a 1-byte message completes in ``o + L + o``,
  giving ``L`` (the simulated runner has a global clock; on a real
  machine one would halve a ping-pong round trip instead);
* **gap saturation**: ``m`` back-to-back 1-byte sends finish at
  ``m*o + (m-1)*g`` on the sender, giving ``g``.

:func:`fit_loggp` runs these against the runner and inverts the closed
forms; :func:`assess_fit` reports relative errors against known
parameters (used by the tests to show the estimator recovers the
emulator's truth, jitter and all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .loggp import LogGPParameters
from .message import CommPattern
from .standard_sim import SimulationResult, simulate_standard

__all__ = ["MicrobenchResults", "fit_loggp", "assess_fit", "emulator_runner"]

#: a runner executes one communication pattern and returns the result
Runner = Callable[[CommPattern], SimulationResult]


def emulator_runner(
    params: LogGPParameters,
    latency_of=None,
    seed: int = 0,
) -> Runner:
    """A runner backed by the package's own simulation (or jittered net).

    With ``latency_of`` unset this produces exact LogGP behaviour — the
    fixture the tests use to show :func:`fit_loggp` inverts the model.
    Pass a :class:`repro.machine.JitteredNetwork`'s ``latency_of`` for a
    noisy assessment.
    """
    if latency_of is None:
        return lambda pattern: simulate_standard(params, pattern, seed=seed)

    from .des_check import simulate_causal  # jitter needs the causal engine

    return lambda pattern: simulate_causal(params, pattern, latency_of=latency_of)


@dataclass(frozen=True)
class MicrobenchResults:
    """Raw micro-benchmark observations (µs)."""

    send_small: float  # sender busy, 1-byte message
    send_large: float  # sender busy, `large_bytes` message
    large_bytes: int
    burst: float  # sender finish time, `burst_count` 1-byte messages
    burst_count: int
    one_way: float  # completion of a single 1-byte transfer


def run_microbenchmarks(
    runner: Runner, large_bytes: int = 65536, burst_count: int = 16, repeats: int = 3
) -> MicrobenchResults:
    """Execute the micro-benchmark suite, median over ``repeats``."""
    if large_bytes < 2:
        raise ValueError("large_bytes must be >= 2")
    if burst_count < 2:
        raise ValueError("burst_count must be >= 2")

    def median(values):
        return float(np.median(values))

    def sender_busy(size: int) -> float:
        samples = []
        for _ in range(repeats):
            res = runner(CommPattern(2, edges=[(0, 1, size)]))
            samples.append(sum(e.duration for e in res.timeline.sends()))
        return median(samples)

    def burst_finish() -> float:
        samples = []
        for _ in range(repeats):
            pat = CommPattern(burst_count + 1)
            for i in range(burst_count):
                pat.add(0, 1 + i, 1)  # distinct receivers: no recv gaps bias
            res = runner(pat)
            samples.append(res.timeline.finish_time(0))
        return median(samples)

    def one_way() -> float:
        samples = []
        for _ in range(repeats):
            res = runner(CommPattern(2, edges=[(0, 1, 1)]))
            samples.append(res.completion_time)
        return median(samples)

    return MicrobenchResults(
        send_small=sender_busy(1),
        send_large=sender_busy(large_bytes),
        large_bytes=large_bytes,
        burst=burst_finish(),
        burst_count=burst_count,
        one_way=one_way(),
    )


def fit_loggp(
    runner: Runner,
    num_procs: int = 8,
    large_bytes: int = 65536,
    burst_count: int = 16,
    repeats: int = 3,
) -> LogGPParameters:
    """Estimate LogGP parameters by inverting the micro-benchmarks.

    Closed-form inversion (this package's timing rules):

    * ``o = send_small``                      (1-byte sender busy time)
    * ``G = (send_large - o) / (large_bytes - 1)``
    * ``g = (burst - m*o) / (m - 1)``         (m = burst_count sends)
    * ``L = one_way - o - o``                 (1-byte end-to-end minus
      both overheads)
    """
    bench = run_microbenchmarks(runner, large_bytes, burst_count, repeats)
    o = bench.send_small
    G = max(0.0, (bench.send_large - o) / (bench.large_bytes - 1))
    m = bench.burst_count
    g = max(0.0, (bench.burst - m * o) / (m - 1))
    L = max(0.0, bench.one_way - 2 * o)
    return LogGPParameters(L=L, o=o, g=g, G=G, P=num_procs, name="fitted")


def assess_fit(
    fitted: LogGPParameters, truth: LogGPParameters
) -> dict[str, float]:
    """Relative error per parameter: ``|fitted - truth| / max(truth, eps)``."""
    out = {}
    for name in ("L", "o", "g", "G"):
        t = getattr(truth, name)
        f = getattr(fitted, name)
        out[name] = abs(f - t) / max(abs(t), 1e-12)
    return out

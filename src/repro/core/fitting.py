"""LogGP parameter estimation from micro-benchmarks.

The LogGP parameters of a real machine are not given — they are measured
(the paper's parameters are "close to the Meiko CS-2" because somebody
ran micro-benchmarks; cf. Culler et al., "LogP Performance Assessment of
Fast Network Interfaces").  This module implements that assessment loop
against any *runner*: a callable that executes a communication pattern
and reports per-processor timings — the machine emulator in this
repository, a real machine in the field.

Micro-benchmarks (classic shapes):

* **send cost**: one k-byte message; the sender is engaged
  ``o + (k-1) G`` — two sizes separate ``o`` from ``G``;
* **one-way transfer**: a 1-byte message completes in ``o + L + o``,
  giving ``L`` (the simulated runner has a global clock; on a real
  machine one would halve a ping-pong round trip instead);
* **gap saturation**: ``m`` back-to-back 1-byte sends finish at
  ``m*o + (m-1)*g`` on the sender, giving ``g``.

:func:`fit_loggp` runs these against the runner and inverts the closed
forms; :func:`assess_fit` reports relative errors against known
parameters (used by the tests to show the estimator recovers the
emulator's truth, jitter and all).

The closed forms themselves are exposed as :data:`MICROBENCH_KINDS` /
:func:`microbench_model` (the forward model: parameters → expected
observable) and :func:`invert_microbenchmarks` (observables →
parameters).  :mod:`repro.calib` builds its Bayesian likelihood on the
same forward model, so the point fit and the posterior can never drift
apart on what a micro-benchmark *means*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .loggp import LogGPParameters
from .message import CommPattern
from .standard_sim import SimulationResult, simulate_standard

__all__ = [
    "MICROBENCH_KINDS",
    "MicrobenchResults",
    "observe_microbenchmark",
    "run_microbenchmarks",
    "microbench_model",
    "invert_microbenchmarks",
    "fit_loggp",
    "assess_fit",
    "emulator_runner",
]

#: the micro-benchmark observable kinds, in collection order
MICROBENCH_KINDS = ("send_small", "send_large", "burst", "one_way")

#: a runner executes one communication pattern and returns the result
Runner = Callable[[CommPattern], SimulationResult]


def emulator_runner(
    params: LogGPParameters,
    latency_of=None,
    seed: int = 0,
) -> Runner:
    """A runner backed by the package's own simulation (or jittered net).

    With ``latency_of`` unset this produces exact LogGP behaviour — the
    fixture the tests use to show :func:`fit_loggp` inverts the model.
    Pass a :class:`repro.machine.JitteredNetwork`'s ``latency_of`` for a
    noisy assessment.
    """
    if latency_of is None:
        return lambda pattern: simulate_standard(params, pattern, seed=seed)

    from .des_check import simulate_causal  # jitter needs the causal engine

    return lambda pattern: simulate_causal(params, pattern, latency_of=latency_of)


@dataclass(frozen=True)
class MicrobenchResults:
    """Raw micro-benchmark observations (µs)."""

    send_small: float  # sender busy, 1-byte message
    send_large: float  # sender busy, `large_bytes` message
    large_bytes: int
    burst: float  # sender finish time, `burst_count` 1-byte messages
    burst_count: int
    one_way: float  # completion of a single 1-byte transfer


def observe_microbenchmark(runner: Runner, kind: str, size: Optional[int] = None) -> float:
    """Execute one micro-benchmark pattern and read its observable (µs).

    The measurement side of :func:`microbench_model`: same ``kind`` /
    ``size`` vocabulary, one raw sample per call.  Both the point fit
    (:func:`run_microbenchmarks`) and the Bayesian calibrator
    (:mod:`repro.calib`) collect their data through this function, so
    they observe the machine identically.
    """
    if kind == "send_small":
        res = runner(CommPattern(2, edges=[(0, 1, 1)]))
        return float(sum(e.duration for e in res.timeline.sends()))
    if kind == "send_large":
        if size is None or size < 2:
            raise ValueError(f"send_large needs a size >= 2, got {size}")
        res = runner(CommPattern(2, edges=[(0, 1, size)]))
        return float(sum(e.duration for e in res.timeline.sends()))
    if kind == "burst":
        if size is None or size < 2:
            raise ValueError(f"burst needs a count >= 2, got {size}")
        pat = CommPattern(size + 1)
        for i in range(size):
            pat.add(0, 1 + i, 1)  # distinct receivers: no recv gaps bias
        res = runner(pat)
        return float(res.timeline.finish_time(0))
    if kind == "one_way":
        res = runner(CommPattern(2, edges=[(0, 1, 1)]))
        return float(res.completion_time)
    raise ValueError(
        f"unknown micro-benchmark kind {kind!r}; expected one of {MICROBENCH_KINDS}"
    )


def run_microbenchmarks(
    runner: Runner, large_bytes: int = 65536, burst_count: int = 16, repeats: int = 3
) -> MicrobenchResults:
    """Execute the micro-benchmark suite, median over ``repeats``."""
    if large_bytes < 2:
        raise ValueError("large_bytes must be >= 2")
    if burst_count < 2:
        raise ValueError("burst_count must be >= 2")

    def median_of(kind: str, size: Optional[int] = None) -> float:
        return float(
            np.median([observe_microbenchmark(runner, kind, size) for _ in range(repeats)])
        )

    return MicrobenchResults(
        send_small=median_of("send_small"),
        send_large=median_of("send_large", large_bytes),
        large_bytes=large_bytes,
        burst=median_of("burst", burst_count),
        burst_count=burst_count,
        one_way=median_of("one_way"),
    )


def microbench_model(
    params: LogGPParameters, kind: str, size: Optional[int] = None
) -> float:
    """Expected value of one micro-benchmark observable (the forward model).

    ``size`` is the message size in bytes for ``send_large`` and the send
    count for ``burst``; the 1-byte observables ignore it.  These are the
    exact closed forms :func:`fit_loggp` inverts, and the likelihood of
    :mod:`repro.calib` evaluates.
    """
    if kind == "send_small":
        return params.o
    if kind == "send_large":
        if size is None or size < 2:
            raise ValueError(f"send_large needs a size >= 2, got {size}")
        return params.o + (size - 1) * params.G
    if kind == "burst":
        if size is None or size < 2:
            raise ValueError(f"burst needs a count >= 2, got {size}")
        return size * params.o + (size - 1) * params.g
    if kind == "one_way":
        return params.L + 2 * params.o
    raise ValueError(
        f"unknown micro-benchmark kind {kind!r}; expected one of {MICROBENCH_KINDS}"
    )


def invert_microbenchmarks(
    bench: MicrobenchResults, num_procs: int = 8
) -> LogGPParameters:
    """Closed-form inversion of the micro-benchmark observables.

    * ``o = send_small``                      (1-byte sender busy time)
    * ``G = (send_large - o) / (large_bytes - 1)``
    * ``g = (burst - m*o) / (m - 1)``         (m = burst_count sends)
    * ``L = one_way - o - o``                 (1-byte end-to-end minus
      both overheads)

    Negative estimates (noise larger than the quantity) clamp to zero.
    """
    o = bench.send_small
    G = max(0.0, (bench.send_large - o) / (bench.large_bytes - 1))
    m = bench.burst_count
    g = max(0.0, (bench.burst - m * o) / (m - 1))
    L = max(0.0, bench.one_way - 2 * o)
    return LogGPParameters(L=L, o=o, g=g, G=G, P=num_procs, name="fitted")


def fit_loggp(
    runner: Runner,
    num_procs: int = 8,
    large_bytes: int = 65536,
    burst_count: int = 16,
    repeats: int = 3,
) -> LogGPParameters:
    """Estimate LogGP parameters by inverting the micro-benchmarks.

    Runs the suite (median over ``repeats``) and applies
    :func:`invert_microbenchmarks`.
    """
    bench = run_microbenchmarks(runner, large_bytes, burst_count, repeats)
    return invert_microbenchmarks(bench, num_procs)


def assess_fit(
    fitted: LogGPParameters, truth: LogGPParameters
) -> dict[str, float]:
    """Relative error per parameter: ``|fitted - truth| / max(truth, eps)``."""
    out = {}
    for name in ("L", "o", "g", "G"):
        t = getattr(truth, name)
        f = getattr(fitted, name)
        out[name] = abs(f - t) / max(abs(t), 1e-12)
    return out

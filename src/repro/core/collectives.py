"""Collective communication under LogGP: patterns and optimal schedules.

The paper builds on work that analysed *regular* communication patterns
with explicit formulas — most prominently Karp, Sahay, Santos and
Schauser, "Optimal broadcast and summation in the LogP model" (its
reference [9]).  This module provides that substrate:

* pattern generators for the classic collectives (linear and binomial
  broadcast, scatter, gather, reduction trees, ring all-gather), emitted
  as :class:`~repro.core.message.CommPattern` so the paper's simulation
  algorithms can schedule them;
* the **optimal single-item LogP broadcast tree** of Karp et al.: each
  processor that knows the datum keeps transmitting to new processors;
  the shape is determined by ``L``, ``o`` and ``g``;
* closed-form completion times for the simple collectives, used by the
  test suite to cross-check the simulators against theory (where a
  formula exists, simulation must match it — the paper's point is that
  formulas stop existing once patterns get irregular).

A semantic subtlety the paper's model makes explicit: a
:class:`~repro.core.message.CommPattern` describes **one communication
step**, in which every message is ready at step start.  Simulating a
multi-round tree broadcast as a single step therefore *under*-estimates:
a recruit would forward the datum before receiving it.  Single-hop
collectives (linear broadcast, scatter, gather, one ring round) are
single-step exact; for trees, :func:`simulate_tree_broadcast` executes
the pattern on the Split-C active-message runtime, where forwarding is
triggered by the receive — the data-dependent schedule the closed forms
describe.

Formulas use this package's timing conventions (see
:mod:`repro.core.loggp`): a send engages the sender ``o + (k-1)G``,
consecutive sends are separated by a gap ``g`` after the previous send
*ends*, a send after a receive waits ``max(o, g) - o``, the wire adds
``L``, and a receive engages the receiver ``o``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from ..obs.events import get_tracer
from .loggp import LogGPParameters
from .message import CommPattern

__all__ = [
    "linear_broadcast_pattern",
    "binomial_broadcast_pattern",
    "scatter_pattern",
    "gather_pattern",
    "reduction_pattern",
    "ring_allgather_round",
    "linear_broadcast_time",
    "binomial_broadcast_time",
    "gather_time",
    "BroadcastSchedule",
    "optimal_broadcast_schedule",
    "simulate_tree_broadcast",
]


def _check(num_procs: int, root: int) -> None:
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    if not (0 <= root < num_procs):
        raise ValueError(f"root {root} out of range")


# --------------------------------------------------------------------------
# pattern generators
# --------------------------------------------------------------------------

def linear_broadcast_pattern(num_procs: int, size: int = 1, root: int = 0) -> CommPattern:
    """Root sends to every other processor, one message at a time."""
    _check(num_procs, root)
    pat = CommPattern(num_procs)
    for dst in range(num_procs):
        if dst != root:
            pat.add(root, dst, size)
    return pat


def binomial_broadcast_pattern(num_procs: int, size: int = 1, root: int = 0) -> CommPattern:
    """Binomial-tree broadcast: informed processors recruit in rounds.

    In round ``r``, every processor that already holds the datum sends it
    to a processor at distance ``2**r`` (mod P).  Message insertion order
    follows rounds, so per-sender program order matches the tree.
    """
    _check(num_procs, root)
    pat = CommPattern(num_procs)
    informed = [root]
    stride = 1
    while stride < num_procs:
        for src in list(informed):
            dst = (src + stride) % num_procs
            if len(informed) >= num_procs:
                break
            pat.add(src, dst, size)
            informed.append(dst)
        stride *= 2
    return pat


def scatter_pattern(num_procs: int, size: int = 1, root: int = 0) -> CommPattern:
    """Root sends a distinct block to every processor (same bytes each)."""
    return linear_broadcast_pattern(num_procs, size, root)


def gather_pattern(num_procs: int, size: int = 1, root: int = 0) -> CommPattern:
    """Every processor sends one block to the root."""
    _check(num_procs, root)
    pat = CommPattern(num_procs)
    for src in range(num_procs):
        if src != root:
            pat.add(src, root, size)
    return pat


def reduction_pattern(num_procs: int, size: int = 1, root: int = 0) -> CommPattern:
    """Binomial reduction tree toward the root (mirror of the broadcast)."""
    _check(num_procs, root)
    pat = CommPattern(num_procs)
    # pair processors at growing strides (leaf combines first, so every
    # contribution is in hand before it is forwarded); relabel so the
    # root is processor 0 of the virtual numbering
    relabel = lambda p: (p + root) % num_procs
    stride = 1
    while stride < num_procs:
        for p in range(0, num_procs, 2 * stride):
            partner = p + stride
            if partner < num_procs:
                pat.add(relabel(partner), relabel(p), size)
        stride *= 2
    return pat


def ring_allgather_round(num_procs: int, size: int = 1) -> CommPattern:
    """One round of a ring all-gather: everyone forwards to the right."""
    if num_procs < 2:
        raise ValueError("a ring needs >= 2 processors")
    pat = CommPattern(num_procs)
    for p in range(num_procs):
        pat.add(p, (p + 1) % num_procs, size)
    return pat


# --------------------------------------------------------------------------
# closed forms (cross-checked against the simulators by the tests)
# --------------------------------------------------------------------------

def linear_broadcast_time(params: LogGPParameters, num_procs: int, size: int = 1) -> float:
    """Completion time of the linear broadcast under this package's rules.

    The root issues ``P-1`` sends separated by ``g`` after each send ends;
    each message lands ``L`` later and costs the receiver ``o``.  All
    receivers are distinct, so the last *issued* message finishes last:

    ``(P-1)*s + (P-2)*g + L + o`` with ``s = o + (size-1)G``.
    """
    if num_procs < 2:
        return 0.0
    s = params.send_duration(size)
    return (num_procs - 1) * s + (num_procs - 2) * params.g + params.L + params.recv_duration(size)


def binomial_broadcast_time(params: LogGPParameters, num_procs: int, size: int = 1) -> float:
    """Completion time of the binomial-tree broadcast.

    Computed by the natural recurrence: a processor informed at time ``t``
    (its receive *ends* at ``t``) starts forwarding after the
    receive→send gap and then sends every ``s + g``; a new processor is
    informed ``s + L + o`` after each send starts.  The result is exact
    for the *data-dependent* execution of the pattern
    :func:`binomial_broadcast_pattern` generates — the tests verify it
    against :func:`simulate_tree_broadcast`.
    """
    if num_procs < 2:
        return 0.0
    s = params.send_duration(size)
    o = params.recv_duration(size)
    rs_gap = max(params.o, params.g) - params.o  # receive -> send
    ss_gap = params.g

    informed = 1
    finish = 0.0
    # simulate the recruitment greedily in pattern order
    order = []
    stride = 1
    srcs: list[int] = [0]
    while stride < num_procs:
        for src in list(srcs):
            if len(srcs) >= num_procs:
                break
            order.append(src)
            srcs.append(len(srcs))
        stride *= 2
    next_send = {0: 0.0}
    informed_at = {0: 0.0}
    new_id = 0
    for src in order:
        if informed >= num_procs:
            break
        start = next_send[src]
        next_send[src] = start + s + ss_gap
        arrive_end = start + s + params.L + o
        new_id += 1
        informed_at[new_id] = arrive_end
        next_send[new_id] = arrive_end + rs_gap
        informed += 1
        finish = max(finish, arrive_end)
    return finish


def gather_time(params: LogGPParameters, num_procs: int, size: int = 1) -> float:
    """Completion time of the all-to-root gather.

    All messages arrive at the root ``s + L`` after time 0; the root then
    performs ``P-1`` receives separated by the receive gap:

    ``s + L + o + (P-2)*(g + o)``.
    """
    if num_procs < 2:
        return 0.0
    s = params.send_duration(size)
    o = params.recv_duration(size)
    return s + params.L + o + (num_procs - 2) * (params.g + o)


# --------------------------------------------------------------------------
# optimal LogP broadcast (Karp et al., the paper's reference [9])
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class BroadcastSchedule:
    """An optimal-broadcast solution: who sends to whom, when.

    ``sends`` is a list of ``(src, dst, send_start)``; ``informed_at``
    maps processor → the time it holds the datum (receive end).
    """

    sends: tuple[tuple[int, int, float], ...]
    informed_at: dict[int, float]

    @property
    def completion_time(self) -> float:
        """Time the last processor is informed."""
        return max(self.informed_at.values())

    def to_pattern(self, size: int = 1, num_procs: Optional[int] = None) -> CommPattern:
        """The schedule's message set as a :class:`CommPattern`.

        Per-sender program order follows send start times, so executing
        the pattern with data dependencies
        (:func:`simulate_tree_broadcast`) reproduces this exact schedule.
        """
        n = num_procs if num_procs is not None else len(self.informed_at)
        pat = CommPattern(n)
        for src, dst, _ in sorted(self.sends, key=lambda t: (t[0], t[2])):
            pat.add(src, dst, size)
        return pat


def optimal_broadcast_schedule(
    params: LogGPParameters, num_procs: int, size: int = 1
) -> BroadcastSchedule:
    """Greedy-optimal single-item broadcast (Karp et al. construction).

    Every informed processor keeps sending to uninformed ones; each new
    datum copy goes to the processor that can be informed *earliest*.
    Under LogP this greedy schedule is provably optimal; here it is
    computed for this package's LogGP timing rules (gap after send end,
    receive→send gap of ``max(o, g) - o``).
    """
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    s = params.send_duration(size)
    o = params.recv_duration(size)
    rs_gap = max(params.o, params.g) - params.o
    ss_gap = params.g

    informed_at = {0: 0.0}
    sends: list[tuple[int, int, float]] = []
    # heap of (next send start, processor id)
    heap: list[tuple[float, int]] = [(0.0, 0)]
    next_id = 1
    while next_id < num_procs:
        start, src = heapq.heappop(heap)
        dst = next_id
        next_id += 1
        arrive_end = start + s + params.L + o
        informed_at[dst] = arrive_end
        sends.append((src, dst, start))
        heapq.heappush(heap, (start + s + ss_gap, src))
        heapq.heappush(heap, (arrive_end + rs_gap, dst))
    return BroadcastSchedule(sends=tuple(sends), informed_at=informed_at)


# --------------------------------------------------------------------------
# data-dependent execution of tree patterns (active-message runtime)
# --------------------------------------------------------------------------

def simulate_tree_broadcast(
    params: LogGPParameters, pattern: CommPattern, root: int = 0
):
    """Execute a tree-broadcast pattern with real data dependencies.

    Every non-root processor forwards its outgoing messages only *after*
    receiving the datum — the semantics a tree broadcast actually has,
    provided here by the Split-C active-message runtime
    (:class:`repro.machine.SplitCMachine`).  Returns the resulting
    :class:`~repro.core.events.StepTimeline`.

    Requires ``pattern`` to be a tree rooted at ``root``: every processor
    other than the root receives exactly once.
    """
    from ..machine.activemsg import SplitCMachine  # deferred: avoids cycle

    receivers = [m.dst for m in pattern.remote_messages()]
    if len(set(receivers)) != len(receivers):
        raise ValueError("pattern is not a tree: some processor receives twice")
    if root in receivers:
        raise ValueError("pattern is not rooted here: the root receives a message")

    children: dict[int, list[tuple[int, int]]] = {}
    for m in pattern.remote_messages():
        children.setdefault(m.src, []).append((m.dst, m.size))

    machine = SplitCMachine(params.with_(P=max(pattern.num_procs, params.P)))

    def program(m):
        nodes = set(children) | set(receivers) | {root}

        def make_handler(pid: int):
            def handler(src, payload):
                for dst, size in children.get(pid, ()):  # forward on receipt
                    m.port(pid).store(dst, size=size, payload=payload)
                m.port(pid).finish()

            return handler

        for p in sorted(nodes):
            m.port(p)  # materialise every participating port
            if p != root:
                m.on_receive(p, make_handler(p))
        for dst, size in children.get(root, ()):
            m.port(root).store(dst, size=size, payload="datum")
        m.port(root).finish()

    timeline = machine.run(program)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.collective_broadcasts")
        tracer.instant(
            "collective.broadcast",
            ts=timeline.completion_time,
            root=root,
            procs=pattern.num_procs,
            messages=len(pattern.remote_messages()),
        )
    return timeline

"""Cache-aware prediction term (the paper's primary future-work item).

Section 7: "cache effects have a great importance and therefore a model to
simulate caching behavior must be incorporated in the simulation
algorithm".  This module adds that model to the *prediction* side (the
machine emulator has a full set-associative cache; here we need something
analytic the predictor can evaluate per basic op).

The model: a processor owning ``resident_bytes`` of blocks re-touches each
block once per wavefront pass.  If the resident set fits in the cache,
operand blocks are found warm and no extra cost accrues; once it exceeds
the cache, the probability that an operand block survived since its last
use decays with the overflow ratio, and every miss costs a line-fill per
operand line.  This is exactly the mechanism the paper blames for the
measured/predicted gap at small block sizes (many small non-adjacent
blocks per processor → high miss rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blockops.calibration import (
    CS2_CACHE_BYTES,
    CS2_LINE_BYTES,
    CS2_MISS_PENALTY_US,
    operand_bytes,
)

__all__ = ["CachePredictionModel"]


@dataclass(frozen=True)
class CachePredictionModel:
    """Analytic per-op cache penalty for the predictor.

    Parameters
    ----------
    cache_bytes, line_bytes, miss_penalty_us:
        Cache geometry; defaults match the machine emulator's node cache so
        that enabling this model closes the gap the emulator opens.
    """

    cache_bytes: int = CS2_CACHE_BYTES
    line_bytes: int = CS2_LINE_BYTES
    miss_penalty_us: float = CS2_MISS_PENALTY_US

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if self.miss_penalty_us < 0:
            raise ValueError("miss penalty must be non-negative")

    def miss_fraction(self, resident_bytes: int) -> float:
        """Probability an operand block was evicted since its last use.

        0 while the resident set fits the cache; approaches 1 as the
        resident set grows far beyond it (LRU over a cyclic re-reference
        pattern evicts everything once the set no longer fits).
        """
        if resident_bytes <= self.cache_bytes:
            return 0.0
        overflow = (resident_bytes - self.cache_bytes) / resident_bytes
        return min(1.0, 2.0 * overflow)

    def extra_cost(self, op: str, b: int, resident_bytes: int) -> float:
        """Expected extra µs for one op given the owner's resident set.

        Scaled by the same cacheability factor the emulator's CPU uses
        (``max(0, 1 - footprint/capacity)``): ops whose operands cannot be
        co-resident stream regardless, and streaming is already in the
        warm Figure 6 cost.
        """
        frac = self.miss_fraction(resident_bytes)
        if frac == 0.0:
            return 0.0
        footprint = operand_bytes(op, b)
        cacheable = max(0.0, 1.0 - footprint / self.cache_bytes)
        if cacheable == 0.0:
            return 0.0
        lines = footprint / self.line_bytes
        return frac * lines * self.miss_penalty_us * cacheable

"""Timelines of simulated communication operations.

The output of both communication-simulation algorithms is a
:class:`StepTimeline`: for each processor, the timed sequence of send and
receive operations (the paper plots these as Figures 4 and 5).  The
timeline knows how to check the LogGP invariants the algorithms must
satisfy, which the test suite leans on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .loggp import LogGPParameters, OpKind
from .message import Message
from .units import TIME_EPS, approx_ge

__all__ = ["CommEvent", "StepTimeline"]


@dataclass(slots=True)
class CommEvent:
    """One operation at one processor: ``proc`` does ``kind`` on ``message``.

    Not ``frozen``: the simulators create one of these per simulated
    operation (hundreds of thousands per sweep point), and a frozen
    dataclass pays ``object.__setattr__`` per field — ~4x the
    construction cost.  Events are still value-like: nothing mutates
    them after creation, and ``__hash__`` hashes the same field tuple a
    frozen dataclass would.
    """

    proc: int
    kind: OpKind
    start: float
    duration: float
    message: Message
    #: for receives: the time the message fully arrived (start >= arrival)
    arrival: Optional[float] = None

    def __hash__(self) -> int:
        return hash(
            (self.proc, self.kind, self.start, self.duration, self.message, self.arrival)
        )

    @property
    def end(self) -> float:
        """Completion time of the operation."""
        return self.start + self.duration

    def __str__(self) -> str:
        arrow = "->" if self.kind is OpKind.SEND else "<-"
        peer = self.message.dst if self.kind is OpKind.SEND else self.message.src
        return (
            f"P{self.proc} {self.kind.value} {arrow} P{peer} "
            f"[{self.start:.2f}, {self.end:.2f}) {self.message.size}B"
        )


@dataclass
class StepTimeline:
    """All operations of one communication step, plus validation helpers."""

    params: LogGPParameters
    events: list[CommEvent] = field(default_factory=list)
    #: per-processor clock at the start of the step (defaults to zeros)
    start_times: dict[int, float] = field(default_factory=dict)

    # -- accumulation -----------------------------------------------------------
    def add(self, event: CommEvent) -> None:
        """Record an operation."""
        self.events.append(event)

    # -- queries -----------------------------------------------------------------
    def events_of(self, proc: int) -> list[CommEvent]:
        """Operations at ``proc`` ordered by start time."""
        return sorted(
            (e for e in self.events if e.proc == proc), key=lambda e: (e.start, e.end)
        )

    def sends(self) -> list[CommEvent]:
        """All send operations, by start time."""
        return sorted((e for e in self.events if e.kind is OpKind.SEND), key=lambda e: e.start)

    def recvs(self) -> list[CommEvent]:
        """All receive operations, by start time."""
        return sorted((e for e in self.events if e.kind is OpKind.RECV), key=lambda e: e.start)

    def participants(self) -> list[int]:
        """Sorted ids of processors that performed at least one operation."""
        return sorted({e.proc for e in self.events})

    def finish_time(self, proc: int) -> float:
        """Time ``proc`` completes its last operation (or its start clock)."""
        own = [e.end for e in self.events if e.proc == proc]
        base = self.start_times.get(proc, 0.0)
        return max(own, default=base)

    @property
    def completion_time(self) -> float:
        """Completion of the whole step (max over processors, paper's metric)."""
        if not self.events:
            return max(self.start_times.values(), default=0.0)
        return max(e.start + e.duration for e in self.events)

    def per_proc_finish(self) -> dict[int, float]:
        """``{proc: finish time}`` over all processors seen."""
        procs = set(self.start_times) | {e.proc for e in self.events}
        return {p: self.finish_time(p) for p in sorted(procs)}

    def busy_time(self, proc: int) -> float:
        """Total time ``proc`` spent engaged in operations this step."""
        return sum(e.duration for e in self.events if e.proc == proc)

    def busy_times(self) -> dict[int, float]:
        """Engaged time of every participating processor, in one pass.

        Each processor's durations accumulate in event order — the same
        float summation order :meth:`busy_time` uses — so
        ``busy_times()[p] == busy_time(p)`` bit for bit, at a single scan
        instead of one scan per processor.
        """
        out: dict[int, float] = {}
        get = out.get
        for e in self.events:
            p = e.proc
            out[p] = get(p, 0.0) + e.duration
        return out

    # -- invariant checking --------------------------------------------------------
    def validate(
        self,
        pattern_messages: Optional[Iterable[Message]] = None,
        strict_latency: bool = True,
    ) -> None:
        """Check every LogGP invariant; raise ``AssertionError`` on violation.

        Checks (all from the paper's sections 3-4):

        1. single port: operations at a processor never overlap;
        2. gap rules of Figure 1 between consecutive operations;
        3. every receive starts at or after its message's arrival time;
        4. arrival time equals ``send.start + send_duration + L``
           (with ``strict_latency=False`` — used for the machine emulator's
           jittered network — only ``arrival >= send end`` is required);
        5. each message is sent exactly once and received exactly once
           (when the original message set is supplied);
        6. sends of one processor follow program order;
        7. no operation starts before its processor's step start clock.
        """
        p = self.params
        send_of: dict[int, CommEvent] = {}
        recv_of: dict[int, CommEvent] = {}
        for e in self.events:
            book = send_of if e.kind is OpKind.SEND else recv_of
            assert e.message.uid not in book, f"duplicate {e.kind.value} of {e.message}"
            book[e.message.uid] = e

        if pattern_messages is not None:
            remote = [m for m in pattern_messages if not m.is_local]
            uids = {m.uid for m in remote}
            assert set(send_of) == uids, "sent-message set mismatch"
            assert set(recv_of) == uids, "received-message set mismatch"

        for uid, recv in recv_of.items():
            send = send_of.get(uid)
            assert send is not None, f"receive without send for uid {uid}"
            nominal = send.start + p.send_duration(send.message.size) + p.L
            arrival = recv.arrival if recv.arrival is not None else nominal
            if strict_latency:
                assert abs(arrival - nominal) < 1e-6, (
                    f"arrival mismatch for {recv.message}: recorded {recv.arrival}, "
                    f"implied {nominal}"
                )
            else:
                assert approx_ge(arrival, send.end), (
                    f"{recv.message}: arrival {arrival} precedes send end {send.end}"
                )
            assert approx_ge(recv.start, arrival), (
                f"{recv.message}: receive starts at {recv.start} before arrival {arrival}"
            )

        for proc in self.participants():
            seq = self.events_of(proc)
            clock = self.start_times.get(proc, 0.0)
            assert approx_ge(seq[0].start, clock), (
                f"P{proc} first op at {seq[0].start} predates its clock {clock}"
            )
            for prev, nxt in zip(seq, seq[1:]):
                assert approx_ge(nxt.start, prev.end), (
                    f"P{proc} overlap: {prev} then {nxt}"
                )
                required = p.earliest_start(prev.kind, prev.end, nxt.kind)
                assert nxt.start >= required - TIME_EPS, (
                    f"P{proc} gap violation: {prev.kind.value}->{nxt.kind.value} "
                    f"start {nxt.start} < required {required}"
                )
            own_sends = [e for e in seq if e.kind is OpKind.SEND]
            seqs = [e.message.seq for e in own_sends]
            assert seqs == sorted(seqs), f"P{proc} sends violate program order: {seqs}"

    def __repr__(self) -> str:
        return (
            f"StepTimeline(events={len(self.events)}, "
            f"completion={self.completion_time:.2f}us)"
        )

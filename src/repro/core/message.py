"""Messages and communication patterns (paper section 4).

A *communication pattern* is a directed multigraph: nodes are processors,
edges are messages, edge weights are message lengths in bytes.  Per
processor, the outgoing messages carry a *program order* — the order the
program would issue the sends — which the simulation algorithms respect.

Self-messages (``src == dst``) are legal: the paper notes that real
executions perform them as local memory transfers, which the simple LogGP
simulation deliberately ignores (section 6.3); the machine emulator charges
them a local-copy cost instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import networkx as nx

__all__ = ["Message", "CommPattern"]


@dataclass(frozen=True, slots=True)
class Message:
    """One message: ``src`` → ``dst``, ``size`` bytes, with a unique ``uid``.

    ``seq`` is the message's position in its sender's program order.
    """

    src: int
    dst: int
    size: int
    uid: int
    seq: int = 0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("processor ids must be non-negative")
        if self.size < 1:
            raise ValueError(f"message size must be >= 1 byte, got {self.size}")

    @property
    def is_local(self) -> bool:
        """True for a self-message (local memory transfer in real execution)."""
        return self.src == self.dst

    def __str__(self) -> str:
        return f"msg#{self.uid} P{self.src}->P{self.dst} ({self.size}B)"


class CommPattern:
    """An ordered collection of messages forming one communication step.

    Parameters
    ----------
    num_procs:
        Number of processors participating (ids ``0 .. num_procs-1``).
    edges:
        Optional iterable of ``(src, dst)`` or ``(src, dst, size)`` tuples,
        added in order (program order per sender follows iteration order).
    default_size:
        Byte length used for 2-tuples.
    """

    def __init__(
        self,
        num_procs: int,
        edges: Optional[Iterable[tuple]] = None,
        default_size: int = 1,
    ):
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        self.num_procs = num_procs
        self._messages: list[Message] = []
        self._uid = itertools.count()
        self._per_src_seq: dict[int, int] = {}
        # cached remote/local views (hot in the simulators; invalidated by add)
        self._remote: Optional[tuple[Message, ...]] = None
        self._local: Optional[tuple[Message, ...]] = None
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    self.add(edge[0], edge[1], default_size)
                elif len(edge) == 3:
                    self.add(edge[0], edge[1], edge[2])
                else:
                    raise ValueError(f"edge must be (src, dst[, size]), got {edge!r}")

    # -- construction ---------------------------------------------------------
    def add(self, src: int, dst: int, size: int = 1) -> Message:
        """Append a message; returns the :class:`Message` created."""
        if not (0 <= src < self.num_procs):
            raise ValueError(f"src {src} out of range 0..{self.num_procs - 1}")
        if not (0 <= dst < self.num_procs):
            raise ValueError(f"dst {dst} out of range 0..{self.num_procs - 1}")
        seq = self._per_src_seq.get(src, 0)
        msg = Message(src=src, dst=dst, size=size, uid=next(self._uid), seq=seq)
        self._per_src_seq[src] = seq + 1
        self._messages.append(msg)
        self._remote = self._local = None
        return msg

    # -- views ----------------------------------------------------------------
    @property
    def messages(self) -> tuple[Message, ...]:
        """All messages in insertion order."""
        return tuple(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def remote_messages(self) -> tuple[Message, ...]:
        """Messages with ``src != dst`` (the ones LogGP simulation models)."""
        remote = self._remote
        if remote is None:
            remote = self._remote = tuple(
                m for m in self._messages if not m.is_local
            )
        return remote

    def local_messages(self) -> tuple[Message, ...]:
        """Self-messages (local copies in real execution)."""
        local = self._local
        if local is None:
            local = self._local = tuple(m for m in self._messages if m.is_local)
        return local

    def sends_of(self, proc: int) -> tuple[Message, ...]:
        """Outgoing messages of ``proc`` in program order."""
        return tuple(m for m in self._messages if m.src == proc)

    def recvs_of(self, proc: int) -> tuple[Message, ...]:
        """Incoming messages of ``proc`` in insertion order."""
        return tuple(m for m in self._messages if m.dst == proc)

    def out_degree(self, proc: int) -> int:
        """Number of messages ``proc`` sends."""
        return sum(1 for m in self._messages if m.src == proc)

    def in_degree(self, proc: int) -> int:
        """Number of messages ``proc`` receives."""
        return sum(1 for m in self._messages if m.dst == proc)

    def participants(self) -> tuple[int, ...]:
        """Sorted processor ids that send or receive at least one message."""
        procs = {m.src for m in self._messages} | {m.dst for m in self._messages}
        return tuple(sorted(procs))

    def total_bytes(self) -> int:
        """Sum of message sizes (remote + local)."""
        return sum(m.size for m in self._messages)

    # -- graph analysis ---------------------------------------------------------
    def to_networkx(self, include_local: bool = False) -> nx.MultiDiGraph:
        """The pattern as a :class:`networkx.MultiDiGraph` (edge attr ``size``)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.num_procs))
        for m in self._messages:
            if include_local or not m.is_local:
                graph.add_edge(m.src, m.dst, key=m.uid, size=m.size)
        return graph

    def has_cycle(self) -> bool:
        """True if the remote-message graph contains a directed cycle.

        Cyclic patterns deadlock the worst-case algorithm unless it breaks
        the cycle with forced sends (paper section 4.2).
        """
        graph = self.to_networkx()
        return not nx.is_directed_acyclic_graph(graph)

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed patterns (defensive checks)."""
        seen: set[int] = set()
        per_src: dict[int, list[int]] = {}
        for m in self._messages:
            if m.uid in seen:
                raise ValueError(f"duplicate message uid {m.uid}")
            seen.add(m.uid)
            per_src.setdefault(m.src, []).append(m.seq)
        for src, seqs in per_src.items():
            if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
                raise ValueError(f"program order of P{src} is not strictly increasing")

    # -- misc -------------------------------------------------------------------
    def scaled(self, factor: float) -> "CommPattern":
        """Copy with every message size scaled (min 1 byte)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        out = CommPattern(self.num_procs)
        for m in self._messages:
            out.add(m.src, m.dst, max(1, round(m.size * factor)))
        return out

    @classmethod
    def from_adjacency(
        cls, sends: Mapping[int, Sequence[tuple[int, int]]], num_procs: int
    ) -> "CommPattern":
        """Build from ``{src: [(dst, size), ...]}`` in per-source program order.

        Sources are interleaved in ascending id order, which only matters
        for global insertion order — per-sender program order is preserved.
        """
        out = cls(num_procs)
        for src in sorted(sends):
            for dst, size in sends[src]:
                out.add(src, dst, size)
        return out

    def __repr__(self) -> str:
        return (
            f"CommPattern(P={self.num_procs}, messages={len(self._messages)}, "
            f"bytes={self.total_bytes()})"
        )

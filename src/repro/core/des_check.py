"""Causal event-driven LogGP execution (cross-check of the Figure 2 algorithm).

This is an independent, process-per-processor implementation of the LogGP
communication step on the :mod:`repro.des` engine.  Each processor runs as
a coroutine that issues its sends as soon as possible but gives priority to
any message that has already arrived — the Split-C active-message policy.

It differs from the paper's Figure 2 algorithm in one deliberate way: it is
strictly *causal*.  The Figure 2 algorithm lets a processor commit to a
send using only the messages whose transmissions have already been
simulated; a message that would arrive between the decision point and the
send's start is not considered.  The causal model re-evaluates when such a
message lands.  The two models coincide whenever ``o + L >= g`` or whenever
message order is forced by the pattern; on other patterns they may differ
slightly — the paper itself observes that "if only one message arrives a
bit later than the LogGP model expected, the whole sequence ... can be
completely changed" (section 4.1).  The test suite uses this module both as
an exact cross-check on order-forced patterns and as an invariant-preserving
second opinion elsewhere.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..des import Environment, Event
from ..kernel import flags as _kernel_flags
from ..obs.events import get_tracer
from .events import CommEvent, StepTimeline
from .loggp import LogGPParameters, OpKind
from .message import CommPattern, Message
from .standard_sim import SimulationResult

__all__ = ["simulate_causal"]

_INF = float("inf")


class _Proc:
    __slots__ = ("pid", "last_kind", "last_end", "sends", "arrived", "wakeup", "received")

    def __init__(self, pid: int, ctime: float, sends: tuple[Message, ...]):
        self.pid = pid
        self.last_kind: Optional[OpKind] = None
        self.last_end = ctime
        self.sends: deque[Message] = deque(sends)
        self.arrived: list[tuple[float, int, Message]] = []
        self.wakeup: Optional[Event] = None
        self.received = 0


def simulate_causal(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    latency_of=None,
) -> SimulationResult:
    """Simulate one communication step with the causal active-message model.

    Arguments mirror :func:`repro.core.standard_sim.simulate_standard`.
    ``rng``/``seed`` are accepted for interface symmetry; the causal model
    is deterministic (the DES engine orders same-time events by creation)
    unless ``latency_of`` is stochastic.

    ``latency_of(message) -> us`` overrides the wire latency per message
    (the machine emulator's jittered network); default is ``params.L``.
    """
    del rng, seed  # deterministic; kept for API symmetry
    if _kernel_flags.enabled:
        from ..kernel.fastdes import simulate_causal_fast

        return simulate_causal_fast(params, pattern, start_times, latency_of)
    if latency_of is None:
        latency_of = lambda _msg: params.L  # noqa: E731 - tiny closure
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    expected = {p: sum(1 for m in remote if m.dst == p) for p in procs}
    state = {
        p: _Proc(p, starts.get(p, 0.0), tuple(m for m in remote if m.src == p))
        for p in procs
    }
    timeline = StepTimeline(
        params=params, start_times={p: starts.get(p, 0.0) for p in procs}
    )

    env = Environment()

    def deliver(dst: int, msg: Message, wire_delay: float):
        """Carry a message across the wire, then wake the destination."""
        yield env.timeout(wire_delay)
        st = state[dst]
        heapq.heappush(st.arrived, (env.now, msg.uid, msg))
        if st.wakeup is not None and not st.wakeup.triggered:
            st.wakeup.succeed()

    def processor(pid: int):
        st = state[pid]
        while st.sends or st.received < expected[pid]:
            now = env.now
            if st.sends:
                send_start = max(
                    now, params.earliest_start(st.last_kind, st.last_end, OpKind.SEND)
                )
            else:
                send_start = _INF
            if st.arrived:
                recv_start = max(
                    now,
                    st.arrived[0][0],
                    params.earliest_start(st.last_kind, st.last_end, OpKind.RECV),
                )
            else:
                recv_start = _INF

            if st.arrived and recv_start <= send_start:
                # Receive priority (strict '<' in Figure 2 == '<=' here,
                # because the send is the one that must yield).
                arrival, _, msg = heapq.heappop(st.arrived)
                if recv_start > now:
                    yield env.timeout(recv_start - now)
                duration = params.recv_duration(msg.size)
                timeline.add(
                    CommEvent(pid, OpKind.RECV, recv_start, duration, msg, arrival=arrival)
                )
                yield env.timeout(duration)
                st.last_kind, st.last_end = OpKind.RECV, recv_start + duration
                st.received += 1
            elif st.sends:
                if send_start > now:
                    # Wait for the send slot, but re-evaluate on any arrival.
                    st.wakeup = env.event()
                    yield env.any_of([env.timeout(send_start - now), st.wakeup])
                    st.wakeup = None
                    continue
                msg = st.sends.popleft()
                duration = params.send_duration(msg.size)
                timeline.add(CommEvent(pid, OpKind.SEND, send_start, duration, msg))
                yield env.timeout(duration)
                st.last_kind, st.last_end = OpKind.SEND, send_start + duration
                env.process(deliver(msg.dst, msg, latency_of(msg)))
            else:
                # Nothing sendable and nothing arrived: block until delivery.
                st.wakeup = env.event()
                yield st.wakeup
                st.wakeup = None

    # Start clocks are enforced through each _Proc.last_end, so every
    # processor coroutine can start at simulation time zero.
    for p in procs:
        env.process(processor(p), name=f"P{p}")

    env.run()

    ctimes = {p: state[p].last_end for p in procs}
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.comm_steps.causal")
        tracer.emit_comm_step(timeline, ctimes, algo="causal")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)

"""The paper's core contribution: LogGP-based running-time prediction.

* :mod:`.loggp` — the machine model and Figure 1 gap rules;
* :mod:`.message` — messages and communication patterns;
* :mod:`.standard_sim` — the Figure 2 communication-simulation algorithm;
* :mod:`.worstcase_sim` — the section 4.2 overestimation algorithm;
* :mod:`.des_check` — causal DES cross-check / active-message model;
* :mod:`.costmodel` — basic-operation cost tables (Figure 6);
* :mod:`.program_sim` — whole-program alternating-step simulation;
* :mod:`.predictor` — the end-to-end experiment API (Figures 7-9);
* :mod:`.cache_extension`, :mod:`.optimizer` — the paper's future work.
"""

from .bounds import RunningTimeBounds, compute_bounds
from .cache_extension import CachePredictionModel
from .collectives import (
    BroadcastSchedule,
    binomial_broadcast_pattern,
    binomial_broadcast_time,
    gather_pattern,
    gather_time,
    linear_broadcast_pattern,
    linear_broadcast_time,
    optimal_broadcast_schedule,
    reduction_pattern,
    ring_allgather_round,
    scatter_pattern,
    simulate_tree_broadcast,
)
from .costmodel import (
    CalibratedCostModel,
    CostModel,
    FlopCostModel,
    MeasuredCostModel,
    TableCostModel,
)
from .des_check import simulate_causal
from .fitting import assess_fit, emulator_runner, fit_loggp
from .events import CommEvent, StepTimeline
from .loggp import (
    ETHERNET_CLUSTER,
    LOW_OVERHEAD_NIC,
    MEIKO_CS2,
    LogGPParameters,
    OpKind,
)
from .message import CommPattern, Message
from .optimizer import (
    SearchResult,
    exhaustive_search,
    local_descent,
    search_block_size_and_layout,
    ternary_search,
)
from .predictor import (
    GERow,
    RunningTimePredictor,
    predicted_optimum,
    run_ge_point,
    run_ge_sweep,
    summarize_ge_point,
)
from .program_sim import PredictionReport, ProgramSimulator, StepRecord
from .standard_sim import SimulationResult, StandardSimulator, simulate_standard
from .worstcase_sim import WorstCaseSimulator, simulate_worstcase

__all__ = [
    "LogGPParameters",
    "OpKind",
    "MEIKO_CS2",
    "ETHERNET_CLUSTER",
    "LOW_OVERHEAD_NIC",
    "CommPattern",
    "Message",
    "CommEvent",
    "StepTimeline",
    "SimulationResult",
    "simulate_standard",
    "StandardSimulator",
    "simulate_worstcase",
    "WorstCaseSimulator",
    "simulate_causal",
    "CostModel",
    "TableCostModel",
    "CalibratedCostModel",
    "MeasuredCostModel",
    "FlopCostModel",
    "CachePredictionModel",
    "ProgramSimulator",
    "PredictionReport",
    "StepRecord",
    "RunningTimePredictor",
    "GERow",
    "run_ge_point",
    "run_ge_sweep",
    "summarize_ge_point",
    "predicted_optimum",
    "SearchResult",
    "exhaustive_search",
    "local_descent",
    "ternary_search",
    "search_block_size_and_layout",
    "BroadcastSchedule",
    "optimal_broadcast_schedule",
    "simulate_tree_broadcast",
    "linear_broadcast_pattern",
    "binomial_broadcast_pattern",
    "scatter_pattern",
    "gather_pattern",
    "reduction_pattern",
    "ring_allgather_round",
    "linear_broadcast_time",
    "binomial_broadcast_time",
    "gather_time",
    "fit_loggp",
    "assess_fit",
    "emulator_runner",
    "RunningTimeBounds",
    "compute_bounds",
]

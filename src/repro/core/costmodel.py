"""Basic-operation cost models (the computation side of the prediction).

The paper measures the running time of each basic operation for every
block size (Figure 6) and uses the resulting table "to determine the
computation time along the control flow path in the simulation algorithm".
A :class:`CostModel` is exactly that table behind a two-argument call:
``cost(op, b) -> microseconds``.

Implementations:

* :class:`TableCostModel` — explicit ``{op: {b: us}}`` table with
  cubic-consistent interpolation for unseen sizes (so variable-sized-block
  programs work even when only the paper's 14 sizes were measured);
* :class:`CalibratedCostModel` — the deterministic Meiko-CS-2-shaped model
  of :mod:`repro.blockops.calibration`;
* :class:`MeasuredCostModel` — lazy host timing of our real NumPy
  implementations (memoised), the closest analogue of the paper's method;
* :class:`FlopCostModel` — a bare ``us_per_flop * flops`` baseline, useful
  for ablations showing why the nonlinear table matters.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Mapping, Protocol, Sequence, runtime_checkable

from ..blockops.calibration import calibrated_cost
from ..blockops.ops import OP_NAMES, flop_count
from ..blockops.timing import OpTimer

__all__ = [
    "CostModel",
    "TableCostModel",
    "CalibratedCostModel",
    "MeasuredCostModel",
    "FlopCostModel",
]


@runtime_checkable
class CostModel(Protocol):
    """Anything with ``cost(op, b) -> us`` can price computation steps."""

    def cost(self, op: str, b: int) -> float:  # pragma: no cover - protocol
        """Running time in µs of one ``op`` invocation on a ``b x b`` block."""
        ...


def _check_op(op: str) -> None:
    if op not in OP_NAMES:
        raise ValueError(f"unknown op {op!r}; expected one of {OP_NAMES}")


class TableCostModel:
    """Cost table with interpolation consistent with cubic growth.

    The table may price any finite op set (GE's four, a stencil's kernel,
    ...).  Between tabulated sizes the cost is interpolated linearly in
    ``b**3`` (the leading term of every GE basic op), which is markedly
    better than linear-in-``b`` for the wide gaps in the paper's size set;
    outside the table it extrapolates from the nearest two entries.
    """

    def __init__(self, table: Mapping[str, Mapping[int, float]]):
        if not table:
            raise ValueError("cost table must price at least one op")
        self._table: dict[str, dict[int, float]] = {}
        for op, raw in table.items():
            entries = dict(raw)
            if not entries:
                raise ValueError(f"table for {op!r} is empty")
            for b, cost in entries.items():
                if b < 1:
                    raise ValueError(f"bad block size {b} for {op}")
                if cost < 0:
                    raise ValueError(f"negative cost for {op} at b={b}")
            self._table[op] = entries
        self._sizes = {op: sorted(t) for op, t in self._table.items()}

    @property
    def block_sizes(self) -> dict[str, list[int]]:
        """Tabulated sizes per op."""
        return {op: list(sizes) for op, sizes in self._sizes.items()}

    def fingerprint(self) -> str:
        """Stable identity over the full table contents (repr-exact)."""
        payload = ";".join(
            f"{op}:{b}={self._table[op][b]!r}"
            for op in sorted(self._table)
            for b in self._sizes[op]
        )
        return "table:" + hashlib.sha256(payload.encode()).hexdigest()[:16]

    def cost(self, op: str, b: int) -> float:
        """Table lookup with cubic-domain interpolation/extrapolation."""
        if op not in self._table:
            raise ValueError(f"op {op!r} not in cost table ({sorted(self._table)})")
        if b < 1:
            raise ValueError("block size must be >= 1")
        entries = self._table[op]
        if b in entries:
            return entries[b]
        sizes = self._sizes[op]
        if len(sizes) == 1:
            # single entry: scale by the cubic ratio
            b0 = sizes[0]
            return entries[b0] * (b / b0) ** 3
        pos = bisect.bisect_left(sizes, b)
        if pos == 0:
            lo, hi = sizes[0], sizes[1]
        elif pos == len(sizes):
            lo, hi = sizes[-2], sizes[-1]
        else:
            lo, hi = sizes[pos - 1], sizes[pos]
        x0, x1, x = float(lo) ** 3, float(hi) ** 3, float(b) ** 3
        y0, y1 = entries[lo], entries[hi]
        value = y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        return max(0.0, value)


class CalibratedCostModel:
    """The deterministic Figure-6-shaped analytic model (CS-2 stand-in)."""

    def cost(self, op: str, b: int) -> float:
        """See :func:`repro.blockops.calibration.calibrated_cost`."""
        return calibrated_cost(op, b)

    def fingerprint(self) -> str:
        """Stable identity: the model is pure in its module constants."""
        return "calibrated:v1"

    def table(self, block_sizes: Sequence[int]) -> dict[str, dict[int, float]]:
        """Materialise the model as an explicit table."""
        return {op: {b: self.cost(op, b) for b in block_sizes} for op in OP_NAMES}


class MeasuredCostModel:
    """Host-measured costs of the real NumPy implementations (memoised).

    This mirrors the paper's methodology exactly: implement the basic
    operations, time them per block size, feed the table to the simulator.
    Timings depend on the host; use :class:`CalibratedCostModel` for
    deterministic experiments.

    Deliberately has no ``fingerprint()`` method: costs are wall-clock
    samples, so no two instances agree and the kernel memo must bypass
    the model (it memoises internally anyway).  Freeze with
    :meth:`to_table` to get a fingerprintable model.
    """

    def __init__(self, repeats: int = 5, seed: int = 0):
        self._timer = OpTimer(repeats=repeats, seed=seed)
        self._memo: dict[tuple[str, int], float] = {}

    def cost(self, op: str, b: int) -> float:
        """Median host wall time (µs), measured once per (op, b)."""
        _check_op(op)
        key = (op, b)
        if key not in self._memo:
            self._memo[key] = self._timer.time_op(op, b)
        return self._memo[key]

    def to_table(self, block_sizes: Sequence[int]) -> TableCostModel:
        """Measure a full sweep and freeze it as a :class:`TableCostModel`."""
        return TableCostModel(
            {op: {b: self.cost(op, b) for b in block_sizes} for op in OP_NAMES}
        )


class FlopCostModel:
    """``cost = us_per_flop * flops(op, b)`` — the naive linear-in-flops model.

    Ablation baseline: it misses every per-call and per-row overhead, so it
    cannot reproduce the Figure 6 crossover (Op1 never overtakes Op4).
    """

    def __init__(self, us_per_flop: float = 0.01):
        if us_per_flop <= 0:
            raise ValueError("us_per_flop must be positive")
        self.us_per_flop = us_per_flop

    def cost(self, op: str, b: int) -> float:
        """Pure flop pricing."""
        _check_op(op)
        if b < 1:
            raise ValueError("block size must be >= 1")
        return self.us_per_flop * flop_count(op, b)

    def fingerprint(self) -> str:
        """Stable identity: fully determined by the flop rate."""
        return f"flop:{self.us_per_flop!r}"

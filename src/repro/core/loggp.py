"""The LogGP machine model (paper section 3).

The LogGP model [Alexandrov, Ionescu, Schauser, Scheiman, SPAA'95]
abstracts a distributed-memory machine with five parameters:

* ``L`` — upper bound on the latency of a message (µs),
* ``o`` — overhead: time a processor is engaged in sending or receiving
  a message (µs),
* ``g`` — gap: minimum interval between consecutive message operations at
  one processor (µs),
* ``G`` — gap per byte for long messages (µs/byte),
* ``P`` — number of processors.

The model is *single port*: at any time a processor is engaged in at most
one send or one receive.

Timing semantics used throughout this package (documented reconstruction
of the paper's Figure 1; see DESIGN.md):

* A **send** of a ``k``-byte message starting at time ``s`` engages the
  sender for ``o + (k-1)*G``; the last byte arrives at the destination at
  ``s + o + (k-1)*G + L``.
* A **receive** engages the receiver for ``o`` and cannot start before the
  message has fully arrived.
* Between consecutive operations at one processor (Figure 1 of the paper):

  ========  ========  =====================================
  previous  next      earliest start of *next*
  ========  ========  =====================================
  send      send      ``end(prev) + g``
  send      receive   ``end(prev) + g``
  receive   receive   ``end(prev) + g``
  receive   send      ``end(prev) + max(o, g) - o``
  ========  ========  =====================================

  The asymmetric receive→send rule is the paper's: the receive overhead
  ``o`` and the gap ``g`` elapse concurrently, so a send may follow a
  receive after only ``max(o, g) - o`` further time units.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

__all__ = ["OpKind", "LogGPParameters", "MEIKO_CS2", "ETHERNET_CLUSTER", "LOW_OVERHEAD_NIC"]


class OpKind(enum.Enum):
    """The two communication operation kinds of the single-port model."""

    SEND = "send"
    RECV = "recv"

    def __repr__(self) -> str:
        return f"OpKind.{self.name}"


@dataclass(frozen=True, slots=True)
class LogGPParameters:
    """The five LogGP parameters plus the timing rules derived from them.

    Times are microseconds; ``G`` is microseconds per byte.
    """

    L: float
    o: float
    g: float
    G: float
    P: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.L < 0 or self.o < 0 or self.g < 0 or self.G < 0:
            raise ValueError("LogGP parameters must be non-negative")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")
        for field in ("L", "o", "g", "G"):
            if not math.isfinite(getattr(self, field)):
                raise ValueError(f"{field} must be finite")

    # -- durations ----------------------------------------------------------
    def send_duration(self, size_bytes: int) -> float:
        """Time the sender's port is engaged transmitting ``size_bytes``."""
        if size_bytes < 1:
            raise ValueError(f"message size must be >= 1 byte, got {size_bytes}")
        return self.o + (size_bytes - 1) * self.G

    def recv_duration(self, size_bytes: int) -> float:
        """Time the receiver is engaged processing an arrived message.

        Under LogGP the per-byte cost is paid once, on injection; the
        receiving overhead is ``o`` regardless of length.
        """
        if size_bytes < 1:
            raise ValueError(f"message size must be >= 1 byte, got {size_bytes}")
        return self.o

    def wire_time(self, size_bytes: int) -> float:
        """Delay from send start until the last byte reaches the receiver."""
        return self.send_duration(size_bytes) + self.L

    def end_to_end(self, size_bytes: int) -> float:
        """Send start to receive end for an otherwise idle pair."""
        return self.wire_time(size_bytes) + self.recv_duration(size_bytes)

    # -- gap rules (paper Figure 1) ------------------------------------------
    def gap_after(self, prev: OpKind, nxt: OpKind) -> float:
        """Minimum idle time between the *end* of ``prev`` and start of ``nxt``."""
        if prev is OpKind.RECV and nxt is OpKind.SEND:
            return max(self.o, self.g) - self.o
        return self.g

    def earliest_start(self, prev_kind: OpKind | None, prev_end: float, nxt: OpKind) -> float:
        """Earliest start of ``nxt`` given the previous operation at a processor.

        ``prev_kind is None`` means the processor has not communicated yet;
        the operation may start at ``prev_end`` (its current clock).
        """
        if prev_kind is None:
            return prev_end
        return prev_end + self.gap_after(prev_kind, nxt)

    # -- convenience ----------------------------------------------------------
    def with_(self, **changes) -> "LogGPParameters":
        """A copy with some parameters replaced (e.g. ``params.with_(P=16)``)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for benchmark headers."""
        return (
            f"{self.name}: L={self.L:g}us o={self.o:g}us g={self.g:g}us "
            f"G={self.G:g}us/B P={self.P}"
        )


#: Meiko CS-2 stand-in parameters (paper section 4.1; digits reconstructed,
#: see DESIGN.md — the paper states values "close to the Meiko CS-2").
#: G = 0.023 us/byte ~= 43 MB/s matches the CS-2's measured bandwidth.
MEIKO_CS2 = LogGPParameters(L=9.0, o=5.0, g=14.0, G=0.023, P=8, name="meiko-cs2")

#: A slower commodity-cluster preset, useful for sensitivity studies.
ETHERNET_CLUSTER = LogGPParameters(L=60.0, o=9.0, g=25.0, G=0.9, P=8, name="ethernet")

#: A fast NIC preset with o << g (bandwidth-limited regime).
LOW_OVERHEAD_NIC = LogGPParameters(L=5.0, o=1.0, g=12.0, G=0.05, P=8, name="fast-nic")

"""Whole-program simulation (the paper's prediction method, section 1).

The simulator follows the control flow of an oblivious program — a
:class:`~repro.trace.program.ProgramTrace` of alternating computation and
communication steps — and advances one clock per processor:

* a computation phase adds the cost-model price of each basic operation a
  processor performs (optionally plus the cache-extension and iteration
  overheads, which the *simple* prediction of the paper deliberately
  leaves out);
* a communication phase runs one of the LogGP communication-simulation
  algorithms (standard / worst-case / causal) with the current clocks as
  per-processor start times, and adopts the resulting clocks.

Per-processor clocks carry across steps, so a processor that finishes its
computation early starts communicating early — the "sequence of send and
receive operations which is more likely to occur in the real execution".

The report splits the total into computation and communication the same
way instrumented real executions do: per processor, computation time is
the sum of its compute phases and communication time is everything else
(engaged sends/receives plus waiting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from ..kernel import flags as _kernel_flags
from ..obs.events import get_tracer
from ..trace.program import ProgramTrace, Step
from .cache_extension import CachePredictionModel
from .costmodel import CostModel
from .des_check import simulate_causal
from .loggp import LogGPParameters, OpKind
from .standard_sim import simulate_standard
from .worstcase_sim import simulate_worstcase

__all__ = ["StepRecord", "PredictionReport", "ProgramSimulator", "SimMode"]

SimMode = Literal["standard", "worstcase", "causal"]

_SIMULATORS = {
    "standard": simulate_standard,
    "worstcase": simulate_worstcase,
    "causal": simulate_causal,
}


@dataclass(frozen=True)
class StepRecord:
    """Aggregates of one step (timelines are not retained, for memory)."""

    label: str
    comp_us: dict[int, float]
    comm_completion_us: float
    comm_busy_us: dict[int, float]
    messages: int


@dataclass
class PredictionReport:
    """Result of simulating one program."""

    #: completion time of the whole program: max final clock (µs)
    total_us: float
    #: per-processor sum of computation phases (µs)
    per_proc_comp_us: dict[int, float]
    #: per-processor final clock (µs)
    per_proc_total_us: dict[int, float]
    #: per-processor time engaged in send/receive operations (µs)
    per_proc_comm_busy_us: dict[int, float]
    steps: list[StepRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def comp_us(self) -> float:
        """Computation time: max over processors (the paper's Figure 9 series)."""
        return max(self.per_proc_comp_us.values(), default=0.0)

    @property
    def comm_us(self) -> float:
        """Communication time: max over processors of (total − computation),
        i.e. engaged communication plus waiting (the Figure 8 series)."""
        return max(
            (
                self.per_proc_total_us[p] - self.per_proc_comp_us.get(p, 0.0)
                for p in self.per_proc_total_us
            ),
            default=0.0,
        )

    def breakdown(self) -> dict[str, float]:
        """``{"total": .., "comp": .., "comm": ..}`` in µs."""
        return {"total": self.total_us, "comp": self.comp_us, "comm": self.comm_us}


class ProgramSimulator:
    """Drives a :class:`ProgramTrace` through the LogGP prediction.

    Parameters
    ----------
    params:
        LogGP machine parameters.
    cost_model:
        Basic-operation cost model (the Figure 6 table).
    mode:
        Which communication algorithm prices the communication phases:
        ``"standard"`` (Figure 2), ``"worstcase"`` (section 4.2), or
        ``"causal"`` (DES cross-check model).
    seed:
        Seed for the communication algorithms' tie-breaking.
    overlap:
        Extension (paper future work): model overlap of communication with
        the next computation phase.  A processor then pays only its engaged
        send/receive time on top of computation, but never proceeds past
        the completion of its last receive (data dependency).
    cache_model:
        Extension: add the analytic cache penalty per basic op, using each
        processor's resident block footprint from the trace.
    iter_overhead_us:
        Extension: per-block-scan overhead per step (the effect the paper
        identifies as its computation-time under-prediction).  The paper's
        simple prediction uses 0.
    keep_steps:
        Retain per-step aggregate records in the report.
    """

    def __init__(
        self,
        params: LogGPParameters,
        cost_model: CostModel,
        mode: SimMode = "standard",
        seed: int = 0,
        overlap: bool = False,
        cache_model: Optional[CachePredictionModel] = None,
        iter_overhead_us: float = 0.0,
        keep_steps: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if mode not in _SIMULATORS:
            raise ValueError(f"unknown mode {mode!r}; expected one of {sorted(_SIMULATORS)}")
        if iter_overhead_us < 0:
            raise ValueError("iter_overhead_us must be non-negative")
        self.params = params
        self.cost_model = cost_model
        self.mode = mode
        self.seed = seed
        self.overlap = overlap
        self.cache_model = cache_model
        self.iter_overhead_us = iter_overhead_us
        self.keep_steps = keep_steps
        #: optional pre-seeded tie-break generator; replaces the
        #: ``default_rng(seed)`` a run would build, so a caller can
        #: inspect the consumed stream afterwards (the RNG-equivalence
        #: property tests do).  Stateful across runs when injected.
        self.rng = rng

    # -- internals --------------------------------------------------------------
    @staticmethod
    def _resident_bytes(trace: ProgramTrace) -> dict[int, int]:
        """Distinct-block footprint per processor, from the trace's work."""
        return {
            proc: sum(b * b * 8 for b in sizes.values())
            for proc, sizes in trace.blocks_by_proc().items()
        }

    def _comp_time(
        self, step: Step, proc: int, resident: dict[int, int], cost_model=None
    ) -> float:
        if cost_model is None:
            cost_model = self.cost_model
        total = 0.0
        ops = step.work.get(proc, ())
        for w in ops:
            cost = cost_model.cost(w.op, w.b)
            if self.cache_model is not None:
                cost += self.cache_model.extra_cost(
                    w.op, w.b, resident.get(proc, 0)
                )
            total += cost
        if ops and self.iter_overhead_us:
            total += self.iter_overhead_us * len(ops)
        return total

    # -- main entry point ----------------------------------------------------------
    def run(self, trace: ProgramTrace) -> PredictionReport:
        """Simulate the program; see class docstring for the semantics.

        When the ambient observability tracer is enabled, the run emits
        structured events on the ``sim:<mode>`` track: a ``compute`` slice
        per processor per computation phase, with the communication
        phases' ``comm``/``send``/``recv`` slices emitted by the
        underlying step simulators (see :mod:`repro.obs`).
        """
        tracer = get_tracer()
        with tracer.in_track(f"sim:{self.mode}"):
            return self._run_traced(trace, tracer)

    def _run_traced(self, trace: ProgramTrace, tracer) -> PredictionReport:
        simulate = _SIMULATORS[self.mode]
        cost_model = self.cost_model
        if _kernel_flags.enabled:
            from ..kernel.memo import memoize

            cost_model = memoize(cost_model)
        rng = self.rng if self.rng is not None else np.random.default_rng(self.seed)
        clocks = {p: 0.0 for p in range(trace.num_procs)}
        comp = {p: 0.0 for p in range(trace.num_procs)}
        comm_busy = {p: 0.0 for p in range(trace.num_procs)}
        resident = self._resident_bytes(trace) if self.cache_model else {}
        records: list[StepRecord] = []
        traced = tracer.enabled and tracer.wants("compute")

        for step_idx, step in enumerate(trace.steps):
            step_comp: dict[int, float] = {}
            for proc in step.work:
                t = self._comp_time(step, proc, resident, cost_model)
                if t:
                    if traced:
                        tracer.slice(
                            "compute", proc=proc, ts=clocks[proc], dur=t,
                            step=step_idx, ops=len(step.work.get(proc, ())),
                        )
                    clocks[proc] += t
                    comp[proc] += t
                    step_comp[proc] = t

            comm_completion = 0.0
            n_msgs = 0
            if step.pattern is not None and step.pattern.remote_messages():
                participants = {
                    p
                    for m in step.pattern.remote_messages()
                    for p in (m.src, m.dst)
                }
                starts = {p: clocks[p] for p in participants}
                result = simulate(self.params, step.pattern, start_times=starts, rng=rng)
                timeline = result.timeline
                comm_completion = timeline.completion_time
                n_msgs = len(step.pattern.remote_messages())

                if self.overlap:
                    # Overlap extension: the CPU pays engaged time only;
                    # data dependencies pin it to its last receive end.
                    for p in participants:
                        busy = timeline.busy_time(p)
                        comm_busy[p] += busy
                        last_recv = max(
                            (
                                e.end
                                for e in timeline.events
                                if e.proc == p and e.kind is OpKind.RECV
                            ),
                            default=0.0,
                        )
                        clocks[p] = max(starts[p] + busy, last_recv)
                else:
                    # One scan for all processors (bit-equal to per-proc
                    # busy_time(): same per-proc summation order).
                    busy = timeline.busy_times()
                    for p in participants:
                        comm_busy[p] += busy.get(p, 0.0)
                        clocks[p] = result.ctimes.get(p, clocks[p])

            if self.keep_steps:
                records.append(
                    StepRecord(
                        label=step.label,
                        comp_us=step_comp,
                        comm_completion_us=comm_completion,
                        comm_busy_us={},
                        messages=n_msgs,
                    )
                )

        total = max(clocks.values(), default=0.0)
        if tracer.enabled:
            tracer.count("sim.program_steps", len(trace.steps))
            tracer.count("sim.program_runs")
        return PredictionReport(
            total_us=total,
            per_proc_comp_us=comp,
            per_proc_total_us=dict(clocks),
            per_proc_comm_busy_us=comm_busy,
            steps=records,
            meta=dict(trace.meta),
        )

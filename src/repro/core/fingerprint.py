"""Canonical machine fingerprints: one hash for store keys, memo keys, UQ tags.

Three subsystems need to answer "is this the same machine?": the
:class:`repro.experiments.ExperimentStore` (disk keys must miss when the
machine changes), the :mod:`repro.kernel` cost memo (a cached cost must
never survive a cost-model change), and the UQ engine (perturbed
ensembles must never collide with deterministic entries).  Before this
module each hashed the parameters its own way — the store through the
lossy ``params.describe()`` string, the memo not at all — so they could
disagree.  Now all of them compose the same canonical helper:

* :func:`loggp_fingerprint` — full-precision (``repr``-exact) hash input
  for the five LogGP parameters, so machines differing in the 17th digit
  still miss;
* :func:`cost_model_fingerprint` — asks the model itself via its
  ``fingerprint()`` method; models that cannot be fingerprinted (e.g.
  host-timed :class:`~repro.core.costmodel.MeasuredCostModel`, whose
  costs are wall-clock samples) return ``None``, which callers treat as
  "do not cache across instances";
* :func:`machine_fingerprint` — the composed ``(params, cost model,
  extra)`` tag.  For un-fingerprintable models it falls back to the
  store's legacy probe costs, preserving its keying behaviour.

Invalidation story (tested in ``tests/test_kernel_memo.py``): a
:class:`~repro.machine.perturbed.ScaledCostModel` folds its per-op
factors into the fingerprint, a ``params.with_(...)`` copy changes the
LogGP hash input, and a :class:`~repro.machine.perturbed.PerturbedMachine`
replicate changes both — so every perturbation is a guaranteed miss,
never a stale hit.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .loggp import LogGPParameters

__all__ = [
    "FINGERPRINT_VERSION",
    "loggp_fingerprint",
    "cost_model_fingerprint",
    "machine_fingerprint",
    "request_fingerprint",
    "posterior_fingerprint",
]

#: bumped whenever the canonical payload format changes (invalidates
#: every store entry and memo bucket built with the old format)
FINGERPRINT_VERSION = 1

#: (op, b) probes for models that cannot self-fingerprint — the legacy
#: :class:`repro.experiments.ExperimentStore` behaviour.
_PROBES = (("op1", 16), ("op4", 16), ("op2", 64), ("op3", 64))


def loggp_fingerprint(params: LogGPParameters) -> str:
    """Canonical, full-precision hash input for the LogGP parameters.

    Uses ``repr`` of the floats (round-trip exact), unlike the display
    string ``params.describe()`` whose ``:g`` formatting collapses
    nearby values onto one key.
    """
    return (
        f"L={params.L!r};o={params.o!r};g={params.g!r};"
        f"G={params.G!r};P={params.P};name={params.name}"
    )


def cost_model_fingerprint(cost_model) -> Optional[str]:
    """The model's own stable identity, or ``None`` if it has none.

    Any object exposing ``fingerprint() -> Optional[str]`` participates;
    ``None`` (no method, or the method returns ``None`` — e.g. a
    :class:`~repro.machine.perturbed.ScaledCostModel` wrapping an
    un-fingerprintable base) means costs must not be shared across
    instances, and the kernel memo bypasses the model entirely.
    """
    method = getattr(cost_model, "fingerprint", None)
    if method is None:
        return None
    return method()


def _probe_fingerprint(cost_model) -> str:
    """Legacy fallback: class name plus four probe costs."""
    costs = []
    for op, b in _PROBES:
        try:
            costs.append(f"{cost_model.cost(op, b):.6f}")
        except ValueError:
            costs.append("n/a")
    return "probe:" + type(cost_model).__name__ + ":" + ",".join(costs)


def machine_fingerprint(
    params: LogGPParameters,
    cost_model,
    *,
    extra: Optional[str] = None,
) -> str:
    """The canonical 16-hex tag of one ``(machine, cost model)`` pair.

    ``extra`` folds in caller-specific context (the store's version +
    UQ tag).  Deterministic across processes for fingerprintable models;
    for probe-fallback models it is as stable as the probe costs are.
    """
    cost_fp = cost_model_fingerprint(cost_model)
    if cost_fp is None:
        cost_fp = _probe_fingerprint(cost_model)
    payload = "|".join(
        [
            f"fp{FINGERPRINT_VERSION}",
            loggp_fingerprint(params),
            cost_fp,
            extra or "",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def posterior_fingerprint(draws) -> str:
    """Canonical 16-hex tag of a posterior draw set (``repr``-exact floats).

    ``draws`` is a sequence of machine draws — anything exposing ``L, o,
    g, G`` floats and an ``ops`` sequence of sorted ``(op, factor)``
    pairs (:class:`repro.uq.spec.MachineDraw`).  Two posteriors agree on
    this tag iff they agree on every draw bit for bit, which is what lets
    the tag key :class:`~repro.experiments.ExperimentStore` entries and
    manifest ``calib`` blocks: a recalibration that moves any draw is a
    guaranteed cache miss, never a stale hit.
    """
    parts = []
    for d in draws:
        ops = ";".join(f"{op}={factor!r}" for op, factor in d.ops)
        parts.append(f"L={d.L!r};o={d.o!r};g={d.g!r};G={d.G!r};ops[{ops}]")
    payload = f"post{FINGERPRINT_VERSION}|" + "|".join(parts)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def request_fingerprint(
    n: int,
    b: int,
    layout: str,
    params: LogGPParameters,
    cost_model,
    *,
    seed: int = 0,
    with_measured: bool = True,
    extra: Optional[str] = None,
) -> str:
    """The canonical cache key of one *prediction request*.

    Composes the evaluation point — exactly the fields that determine a
    :class:`repro.experiments.PointSummary` — with the canonical machine
    fingerprint, so the prediction service (:mod:`repro.serve`), the
    :class:`~repro.experiments.ExperimentStore` and the kernel memo all
    agree on "same machine".  Presentation-only request fields (response
    projection, transport framing) must stay *out* of this key: two wire
    requests meaning the same evaluation share the fingerprint.

    ``extra`` folds in evaluation context beyond the point itself — the
    serve layer passes the UQ spec's tag for perturbed-replicate
    requests, mirroring the store's ``extra_tag`` keying.
    """
    payload = "|".join(
        [
            f"req{FINGERPRINT_VERSION}",
            f"n={n};b={b};layout={layout};seed={seed};"
            f"measured={1 if with_measured else 0}",
            machine_fingerprint(params, cost_model, extra=extra),
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]

"""Automatic optimum search over block sizes and layouts (paper §7).

The paper's future work: "automatically determine these optimal values
from the predicted running times.  This reduces to a search problem and
therefore some heuristics have to be used."  This module implements that
search over the discrete candidate set:

* :func:`exhaustive_search` — evaluate every candidate (the oracle);
* :func:`local_descent` — start somewhere, walk downhill on the sorted
  candidate list; exact for unimodal curves, cheap always;
* :func:`ternary_search` — discrete golden-section-style bracketing,
  ``O(log n)`` evaluations, exact for strictly unimodal curves (total GE
  time is *sawtoothed*, so this is a heuristic — the benches quantify how
  often it lands on a near-optimal point, like the paper's "roughly
  predicted best block sizes yield real running times not far from the
  real minimum");
* :func:`search_block_size_and_layout` — joint search, one evaluation
  budget report per layout.

Every search takes an ``evaluate(candidate) -> float`` callable (lower is
better) and memoises it, so expensive simulations are never repeated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "SearchResult",
    "exhaustive_search",
    "local_descent",
    "ternary_search",
    "search_block_size_and_layout",
]


@dataclass
class SearchResult:
    """Outcome of one search: the winner, its value and the cost paid."""

    best: int
    value: float
    evaluations: int
    #: every (candidate, value) actually evaluated, in evaluation order
    history: list[tuple[int, float]] = field(default_factory=list)


class _Memo:
    def __init__(self, evaluate: Callable[[int], float]):
        self._fn = evaluate
        self._memo: dict[int, float] = {}
        self.history: list[tuple[int, float]] = []

    def __call__(self, x: int) -> float:
        if x not in self._memo:
            value = self._fn(x)
            self._memo[x] = value
            self.history.append((x, value))
        return self._memo[x]

    @property
    def count(self) -> int:
        return len(self._memo)


def _checked(candidates: Sequence[int]) -> list[int]:
    cands = sorted(set(candidates))
    if not cands:
        raise ValueError("need at least one candidate")
    return cands


def exhaustive_search(
    evaluate: Callable[[int], float], candidates: Sequence[int]
) -> SearchResult:
    """Evaluate everything; guaranteed optimal over the candidate set."""
    cands = _checked(candidates)
    memo = _Memo(evaluate)
    best = min(cands, key=memo)
    return SearchResult(best=best, value=memo(best), evaluations=memo.count, history=memo.history)


def local_descent(
    evaluate: Callable[[int], float],
    candidates: Sequence[int],
    start: int | None = None,
) -> SearchResult:
    """Hill descent on the sorted candidate list from ``start``.

    Moves to whichever neighbour improves until neither does.  Finds the
    global optimum of unimodal curves; on sawtoothed curves it finds a
    local optimum — the paper's notion of "locally optimal value".
    """
    cands = _checked(candidates)
    memo = _Memo(evaluate)
    if start is None:
        idx = len(cands) // 2
    else:
        if start not in cands:
            raise ValueError(f"start {start} is not a candidate")
        idx = cands.index(start)
    while True:
        here = memo(cands[idx])
        moved = False
        for step in (-1, +1):
            nxt = idx + step
            if 0 <= nxt < len(cands) and memo(cands[nxt]) < here:
                idx, moved = nxt, True
                break
        if not moved:
            break
    best = cands[idx]
    return SearchResult(best=best, value=memo(best), evaluations=memo.count, history=memo.history)


def ternary_search(
    evaluate: Callable[[int], float], candidates: Sequence[int]
) -> SearchResult:
    """Discrete ternary search: O(log n) evaluations, exact if unimodal."""
    cands = _checked(candidates)
    memo = _Memo(evaluate)
    lo, hi = 0, len(cands) - 1
    while hi - lo > 2:
        m1 = lo + (hi - lo) // 3
        m2 = hi - (hi - lo) // 3
        if memo(cands[m1]) < memo(cands[m2]):
            hi = m2 - 1
        else:
            lo = m1 + 1
    best = min(cands[lo : hi + 1], key=memo)
    return SearchResult(best=best, value=memo(best), evaluations=memo.count, history=memo.history)


def search_block_size_and_layout(
    evaluate: Callable[[str, int], float],
    layouts: Sequence[str],
    candidates: Sequence[int],
    method: str = "exhaustive",
) -> tuple[str, SearchResult, dict[str, SearchResult]]:
    """Joint layout + block-size search.

    Runs the chosen per-layout search for every layout and returns
    ``(best_layout, its_result, {layout: result})``.
    """
    methods = {
        "exhaustive": exhaustive_search,
        "descent": local_descent,
        "ternary": ternary_search,
    }
    if method not in methods:
        raise ValueError(f"unknown method {method!r}; known: {sorted(methods)}")
    if not layouts:
        raise ValueError("need at least one layout")
    search = methods[method]
    per_layout = {
        name: search(lambda b, _n=name: evaluate(_n, b), candidates)
        for name in layouts
    }
    best_layout = min(per_layout, key=lambda name: per_layout[name].value)
    return best_layout, per_layout[best_layout], per_layout

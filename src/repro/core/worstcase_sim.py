"""The overestimation ("worst case") algorithm (paper section 4.2).

To bound the communication time from above, each processor first waits for
*all* the messages it has to receive, and only afterwards starts
transmitting its own.  Each processor knows its expected message count via
a messages-to-receive counter; at each round, every processor whose counter
has reached zero (and whose receives are all performed) sends all of its
messages, decrementing the counters at the destinations; then the
destinations perform the corresponding receive operations.

The paper notes this schedule cannot occur in a real Split-C execution — it
exists purely to upper-bound the LogGP communication time — and that cyclic
communication patterns would deadlock it: every processor on a cycle waits
for some other.  In that case the algorithm "performs randomly some message
transmissions in order to break the deadlock"; here a uniformly random
blocked sender (seeded RNG) is forced to transmit its next message.

The same LogGP gap rules (Figure 1) apply as in the standard algorithm.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..kernel import flags as _kernel_flags
from ..obs.events import get_tracer
from .events import CommEvent, StepTimeline
from .loggp import LogGPParameters, OpKind
from .message import CommPattern, Message
from .standard_sim import SimulationResult

__all__ = ["simulate_worstcase", "WorstCaseSimulator"]


class _ProcState:
    __slots__ = ("ctime", "last_kind", "send_queue", "recv_heap", "expected")

    def __init__(self, ctime: float, sends: tuple[Message, ...], expected: int):
        self.ctime = ctime
        self.last_kind: Optional[OpKind] = None
        self.send_queue: deque[Message] = deque(sends)
        self.recv_heap: list[tuple[float, int, Message]] = []
        #: messages-to-receive counter (decremented when a source *sends*)
        self.expected = expected


class WorstCaseSimulator:
    """Class-based interface mirroring :class:`StandardSimulator`."""

    def __init__(self, params: LogGPParameters, rng: Optional[np.random.Generator] = None):
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(
        self,
        pattern: CommPattern,
        start_times: Optional[Mapping[int, float]] = None,
    ) -> SimulationResult:
        """Simulate one communication step with the worst-case schedule."""
        return _simulate(self.params, pattern, start_times, self.rng)


def simulate_worstcase(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> SimulationResult:
    """Functional entry point for the overestimation algorithm."""
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    return _simulate(params, pattern, start_times, rng)


def _simulate(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> SimulationResult:
    if _kernel_flags.enabled:
        from ..kernel.fastsim import simulate_worstcase_fast

        return simulate_worstcase_fast(params, pattern, start_times, rng)
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()

    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))
    state: dict[int, _ProcState] = {}
    for p in procs:
        sends = tuple(m for m in remote if m.src == p)
        expected = sum(1 for m in remote if m.dst == p)
        state[p] = _ProcState(starts.get(p, 0.0), sends, expected)

    timeline = StepTimeline(
        params=params, start_times={p: starts.get(p, 0.0) for p in procs}
    )

    def do_send(proc: int) -> None:
        st = state[proc]
        msg = st.send_queue.popleft()
        start = params.earliest_start(st.last_kind, st.ctime, OpKind.SEND)
        duration = params.send_duration(msg.size)
        timeline.add(CommEvent(proc, OpKind.SEND, start, duration, msg))
        st.ctime = start + duration
        st.last_kind = OpKind.SEND
        arrival = start + duration + params.L
        dst = state[msg.dst]
        heapq.heappush(dst.recv_heap, (arrival, msg.uid, msg))
        dst.expected -= 1

    def do_recv(proc: int) -> None:
        st = state[proc]
        arrival, _, msg = heapq.heappop(st.recv_heap)
        earliest = params.earliest_start(st.last_kind, st.ctime, OpKind.RECV)
        start = max(arrival, earliest)
        duration = params.recv_duration(msg.size)
        timeline.add(CommEvent(proc, OpKind.RECV, start, duration, msg, arrival=arrival))
        st.ctime = start + duration
        st.last_kind = OpKind.RECV

    while any(state[p].send_queue for p in procs):
        # A processor may transmit once it expects no more messages *and*
        # has actually performed every receive.
        ready = [
            p
            for p in procs
            if state[p].send_queue
            and state[p].expected == 0
            and not state[p].recv_heap
        ]
        if not ready:
            # Either a cycle (true deadlock) or receives still pending this
            # round; first let pending receives complete, then force-break.
            receivers = [p for p in procs if state[p].recv_heap]
            if receivers:
                for p in receivers:
                    while state[p].recv_heap:
                        do_recv(p)
                continue
            blocked = [p for p in procs if state[p].send_queue]
            victim = blocked[0] if len(blocked) == 1 else int(rng.choice(blocked))
            do_send(victim)  # random forced transmission breaks the cycle
            continue

        # Part 1 of the round: every ready processor sends all its messages.
        for p in ready:
            while state[p].send_queue:
                do_send(p)
        # Part 2: destinations perform the corresponding receives.
        for p in procs:
            while state[p].recv_heap:
                do_recv(p)

    # Drain any receives left over from the final round of sends.
    for p in procs:
        while state[p].recv_heap:
            do_recv(p)

    ctimes = {p: state[p].ctime for p in procs}
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.comm_steps.worstcase")
        tracer.emit_comm_step(timeline, ctimes, algo="worstcase")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)

"""Unit conventions and small numeric helpers.

All simulation times in this package are **floating-point microseconds**;
all message sizes are **integer bytes**.  These helpers make conversions
explicit at API boundaries (benchmark reports print seconds, like the
paper's figures).
"""

from __future__ import annotations

__all__ = [
    "US_PER_MS",
    "US_PER_S",
    "us_to_s",
    "us_to_ms",
    "s_to_us",
    "ms_to_us",
    "approx_le",
    "approx_ge",
]

US_PER_MS = 1_000.0
US_PER_S = 1_000_000.0

#: absolute slack used when comparing event times (float round-off only)
TIME_EPS = 1e-9


def us_to_s(t_us: float) -> float:
    """Convert microseconds to seconds."""
    return t_us / US_PER_S


def us_to_ms(t_us: float) -> float:
    """Convert microseconds to milliseconds."""
    return t_us / US_PER_MS


def s_to_us(t_s: float) -> float:
    """Convert seconds to microseconds."""
    return t_s * US_PER_S


def ms_to_us(t_ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return t_ms * US_PER_MS


def approx_le(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """``a <= b`` up to float round-off."""
    return a <= b + eps


def approx_ge(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """``a >= b`` up to float round-off."""
    return a + eps >= b

"""Analytic bounds and the BSP reference estimate for program running time.

Before simulating, one can bracket the answer with closed forms — the
approach of the bound-oriented prior work the paper cites (Liang &
Tripathi; Löwe & Zimmermann's upper time bounds, its references [12] and
[13]).  The simulation must land inside the bracket, which gives the test
suite a model-independent sanity check, and the gap between bound and
simulation *is* the value the paper's simulation adds.

Lower bounds (each individually valid; the reported bound is their max):

* **work bound** — some processor must execute its own operations and be
  engaged for its own sends/receives: ``max_p (comp_p + busy_p)``;
* **average bound** — the total work cannot be split better than evenly
  across processors: ``(Σ comp + Σ busy) / P``.

Upper bound:

* **serialisation bound** — run everything with zero overlap: every op
  after every other, every message after every other:
  ``Σ comp + Σ (send + L + recv + g)``.

Additionally, :func:`compute_bounds` reports the **BSP reference**
estimate (Valiant's bulk-synchronous model, the paper's section 1): what
the program would cost if every step ended with a global barrier —
``Σ over steps of (max-processor computation + one message transit)``.
Under per-processor clocks (the paper's model) steps of different
processors overlap, so the BSP figure is *neither* a bound nor the
prediction; the difference between it and the LogGP simulation measures
what barrier-free execution buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import ProgramTrace
from .costmodel import CostModel
from .loggp import LogGPParameters

__all__ = ["RunningTimeBounds", "compute_bounds"]


@dataclass(frozen=True)
class RunningTimeBounds:
    """Closed-form bracket on a program's running time (µs)."""

    lower_us: float
    upper_us: float
    #: the individual lower bounds (diagnostics)
    work_bound_us: float
    average_bound_us: float
    #: Valiant-style barrier-synchronous estimate (not a bound; see module doc)
    bsp_reference_us: float

    def __post_init__(self) -> None:
        if self.lower_us > self.upper_us + 1e-9:
            raise ValueError("lower bound exceeds upper bound")

    def contains(self, value_us: float, slack: float = 1e-9) -> bool:
        """Is ``value_us`` inside the bracket (with relative slack)?"""
        return (
            self.lower_us * (1.0 - slack) <= value_us <= self.upper_us * (1.0 + slack)
        )

    @property
    def spread(self) -> float:
        """Upper / lower ratio — how loose the analytic bracket is."""
        if self.lower_us == 0:
            return float("inf")
        return self.upper_us / self.lower_us


def compute_bounds(
    trace: ProgramTrace, params: LogGPParameters, cost_model: CostModel
) -> RunningTimeBounds:
    """Bracket the running time of ``trace`` without simulating it."""
    per_proc_comp = {p: 0.0 for p in range(trace.num_procs)}
    per_proc_busy = {p: 0.0 for p in range(trace.num_procs)}
    bsp = 0.0
    serial = 0.0

    for step in trace.steps:
        step_comp_max = 0.0
        for proc, ops in step.work.items():
            t = sum(cost_model.cost(w.op, w.b) for w in ops)
            per_proc_comp[proc] += t
            serial += t
            step_comp_max = max(step_comp_max, t)

        step_msg_max = 0.0
        if step.pattern is not None:
            for m in step.pattern.remote_messages():
                send = params.send_duration(m.size)
                recv = params.recv_duration(m.size)
                per_proc_busy[m.src] += send
                per_proc_busy[m.dst] += recv
                serial += send + params.L + recv + params.g
                step_msg_max = max(step_msg_max, params.end_to_end(m.size))
        bsp += step_comp_max + step_msg_max

    work_bound = max(
        (per_proc_comp[p] + per_proc_busy[p] for p in per_proc_comp), default=0.0
    )
    total = sum(per_proc_comp.values()) + sum(per_proc_busy.values())
    average_bound = total / trace.num_procs
    lower = max(work_bound, average_bound)
    upper = max(serial, lower)
    return RunningTimeBounds(
        lower_us=lower,
        upper_us=upper,
        work_bound_us=work_bound,
        average_bound_us=average_bound,
        bsp_reference_us=bsp,
    )

"""High-level prediction API: run the paper's experiments in one call.

This is the layer the benchmarks, examples and integration tests use.  It
wires together trace generation (:mod:`repro.apps`), the whole-program
LogGP simulation (:mod:`repro.core.program_sim`, both the standard and the
worst-case algorithm) and — optionally — the machine emulator standing in
for the real Meiko CS-2 (:mod:`repro.machine.emulator`).

One :class:`GERow` is one point of Figures 7-9: a (block size, layout)
pair with its predicted and "measured" breakdowns.  :func:`run_ge_sweep`
produces the full figure series; :func:`predicted_optimum` extracts the
paper's "locally optimal block size" answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..apps.gauss import GEConfig, build_ge_trace
from ..kernel import flags as _kernel_flags
from ..layouts import LAYOUTS
from ..machine.emulator import MachineEmulator, MeasuredReport
from ..trace.program import ProgramTrace
from .cache_extension import CachePredictionModel
from .costmodel import CostModel
from .loggp import LogGPParameters
from .program_sim import PredictionReport, ProgramSimulator

__all__ = [
    "RunningTimePredictor",
    "GERow",
    "run_ge_point",
    "run_ge_sweep",
    "summarize_ge_point",
    "summarize_uq_point",
    "predicted_optimum",
]


class RunningTimePredictor:
    """Predicts program running times from traces (the paper's tool).

    Bundles the machine parameters and cost model; exposes the standard
    and worst-case predictions plus the optional extensions (overlap,
    cache model) as keyword switches.
    """

    def __init__(
        self,
        params: LogGPParameters,
        cost_model: CostModel,
        seed: int = 0,
    ):
        self.params = params
        self.cost_model = cost_model
        self.seed = seed

    def predict(
        self,
        trace: ProgramTrace,
        mode: str = "standard",
        overlap: bool = False,
        cache_model: Optional[CachePredictionModel] = None,
        iter_overhead_us: float = 0.0,
    ) -> PredictionReport:
        """One prediction run; see :class:`ProgramSimulator` for knobs."""
        sim = ProgramSimulator(
            params=self.params,
            cost_model=self.cost_model,
            mode=mode,
            seed=self.seed,
            overlap=overlap,
            cache_model=cache_model,
            iter_overhead_us=iter_overhead_us,
        )
        return sim.run(trace)

    def predict_both(self, trace: ProgramTrace) -> tuple[PredictionReport, PredictionReport]:
        """``(standard, worst-case)`` predictions of one trace."""
        return self.predict(trace, "standard"), self.predict(trace, "worstcase")


@dataclass
class GERow:
    """One (block size, layout) point of the GE evaluation."""

    n: int
    b: int
    layout: str
    pred_standard: PredictionReport
    pred_worstcase: PredictionReport
    measured: Optional[MeasuredReport] = None

    def series(self) -> dict[str, float]:
        """The Figure 7 series of this point, in µs."""
        out = {
            "simulated_standard": self.pred_standard.total_us,
            "simulated_worstcase": self.pred_worstcase.total_us,
        }
        if self.measured is not None:
            out["measured_with_caching"] = self.measured.total_us
            out["measured_without_caching"] = self.measured.total_without_cache_us
        return out


def run_ge_point(
    n: int,
    b: int,
    layout_name: str,
    params: LogGPParameters,
    cost_model: CostModel,
    with_measured: bool = True,
    seed: int = 0,
    emulator: Optional[MachineEmulator] = None,
) -> GERow:
    """Evaluate one GE configuration: both predictions plus the emulator.

    ``layout_name`` is a key of :data:`repro.layouts.LAYOUTS`.
    """
    if layout_name not in LAYOUTS:
        raise ValueError(f"unknown layout {layout_name!r}; known: {sorted(LAYOUTS)}")
    if _kernel_flags.enabled:
        from ..obs.events import get_tracer

        if not get_tracer().enabled:
            # Fast and untraced: the batch kernel's width-1 lane, which
            # runs the identical float-operation sequence over a shared
            # compiled plan (the traced path below stays the sole source
            # of the event stream).
            from ..kernel.vector import ge_plan, simulate_programs_batch

            plan = ge_plan(n, b, layout_name, params.P)
            reports = simulate_programs_batch(plan, [(params, cost_model)], [seed])[0]
            measured = None
            if with_measured:
                measured = _measured_report(
                    plan.trace, params, cost_model, seed, emulator=emulator
                )
            return GERow(
                n=n,
                b=b,
                layout=layout_name,
                pred_standard=reports["standard"],
                pred_worstcase=reports["worstcase"],
                measured=measured,
            )
        # Rebuilt traces are bit-identical (per-pattern uid counters), so
        # sweep/UQ replicates can share one cached copy per configuration.
        from ..kernel.tracecache import ge_trace

        trace = ge_trace(n, b, layout_name, params.P)
    else:
        layout = LAYOUTS[layout_name](n // b, params.P)
        trace = build_ge_trace(GEConfig(n=n, b=b, layout=layout))
    predictor = RunningTimePredictor(params, cost_model, seed=seed)
    pred_std, pred_wc = predictor.predict_both(trace)
    measured = None
    if with_measured:
        measured = _measured_report(trace, params, cost_model, seed, emulator=emulator)
    return GERow(
        n=n,
        b=b,
        layout=layout_name,
        pred_standard=pred_std,
        pred_worstcase=pred_wc,
        measured=measured,
    )


def _measured_report(
    trace: ProgramTrace,
    params: LogGPParameters,
    cost_model: CostModel,
    seed: int,
    emulator: Optional[MachineEmulator] = None,
) -> MeasuredReport:
    """The emulated "measured" run of one point (scalar and batch paths)."""
    if emulator is None:
        emulator = MachineEmulator(params=params, cost_model=cost_model, seed=seed)
    return emulator.run(trace)


def _uq_machine(
    params: LogGPParameters,
    cost_model: CostModel,
    spec,
    seed: int,
    with_measured: bool = True,
):
    """The perturbed ``(params, cost_model, emulator)`` of one UQ replicate.

    Single source of the replicate's machine for the scalar
    (:func:`summarize_uq_point`) and batch
    (:func:`repro.kernel.vector.evaluate_ge_points_batch`) pipelines.
    ``emulator`` is ``None`` unless the spec overrides the network (the
    default emulator is built later, against the perturbed machine).
    """
    from ..machine.perturbed import PerturbedMachine

    p_params, p_cost = PerturbedMachine(params, cost_model, spec).sample(seed)
    emulator = None
    if with_measured:
        overrides = spec.network_overrides()
        if overrides:
            from ..machine.network import JitteredNetwork

            emulator = MachineEmulator(
                params=p_params,
                cost_model=p_cost,
                network=JitteredNetwork(params=p_params, seed=seed, **overrides),
                seed=seed,
            )
    return p_params, p_cost, emulator


def summarize_ge_point(
    n: int,
    b: int,
    layout_name: str,
    params: LogGPParameters,
    cost_model: CostModel,
    with_measured: bool = True,
    seed: int = 0,
) -> dict:
    """One GE point as a flat, JSON/pickle-ready dict of totals and breakdowns.

    This is the picklable single-point entrypoint the parallel sweep
    engine (:mod:`repro.sweep`) dispatches to worker processes, and the
    single source of truth for flattening a :class:`GERow` into the shape
    :class:`repro.experiments.PointSummary` stores on disk.  The keys are
    exactly the ``PointSummary`` fields.
    """
    row = run_ge_point(
        n, b, layout_name, params, cost_model,
        with_measured=with_measured, seed=seed,
    )
    return _flatten_ge_row(row, seed)


def _flatten_ge_row(row: GERow, seed: int) -> dict:
    """A :class:`GERow` as the flat ``PointSummary``-shaped dict."""
    return {
        "n": row.n,
        "b": row.b,
        "layout": row.layout,
        "seed": seed,
        "pred_standard_total": row.pred_standard.total_us,
        "pred_standard_comp": row.pred_standard.comp_us,
        "pred_standard_comm": row.pred_standard.comm_us,
        "pred_worstcase_total": row.pred_worstcase.total_us,
        "pred_worstcase_comm": row.pred_worstcase.comm_us,
        "measured_total": row.measured.total_us if row.measured else None,
        "measured_total_wo_cache": (
            row.measured.total_without_cache_us if row.measured else None
        ),
        "measured_comp": row.measured.comp_us if row.measured else None,
        "measured_comm": row.measured.comm_us if row.measured else None,
    }


def summarize_uq_point(
    n: int,
    b: int,
    layout_name: str,
    params: LogGPParameters,
    cost_model: CostModel,
    spec,
    with_measured: bool = True,
    seed: int = 0,
) -> dict:
    """One Monte Carlo replicate of a GE point, as the flat summary dict.

    The replicate-aware sibling of :func:`summarize_ge_point`: ``spec``
    is a :class:`repro.uq.UQSpec`, and ``seed`` is the *replicate* seed —
    it determines the perturbed machine (via
    :class:`repro.machine.PerturbedMachine`), the emulated network's
    draws, and the simulators' tie-breaking, so the whole evaluation is a
    pure function of ``(configuration, spec, seed)``.  An identity spec
    (or ``spec=None``) takes the exact :func:`summarize_ge_point` code
    path, which is what makes zero-noise UQ runs bit-identical to the
    deterministic sweep.
    """
    if spec is None or spec.is_identity():
        return summarize_ge_point(
            n, b, layout_name, params, cost_model,
            with_measured=with_measured, seed=seed,
        )
    p_params, p_cost, emulator = _uq_machine(
        params, cost_model, spec, seed, with_measured=with_measured
    )
    row = run_ge_point(
        n, b, layout_name, p_params, p_cost,
        with_measured=with_measured, seed=seed, emulator=emulator,
    )
    return _flatten_ge_row(row, seed)


def run_ge_sweep(
    n: int,
    block_sizes: Sequence[int],
    layout_names: Sequence[str],
    params: LogGPParameters,
    cost_model: CostModel,
    with_measured: bool = True,
    seed: int = 0,
    progress=None,
) -> list[GERow]:
    """All (block size, layout) points of the paper's GE evaluation.

    ``progress`` is an optional callable ``(layout, b) -> None`` invoked
    before each point (benchmarks print status with it).
    """
    rows = []
    for layout_name in layout_names:
        for b in block_sizes:
            if n % b:
                raise ValueError(f"block size {b} does not divide n={n}")
            if progress is not None:
                progress(layout_name, b)
            rows.append(
                run_ge_point(
                    n,
                    b,
                    layout_name,
                    params,
                    cost_model,
                    with_measured=with_measured,
                    seed=seed,
                )
            )
    return rows


def predicted_optimum(
    rows: Sequence[GERow], layout: str, series: str = "simulated_standard"
) -> int:
    """The block size minimising ``series`` among a layout's rows."""
    candidates = [r for r in rows if r.layout == layout]
    if not candidates:
        raise ValueError(f"no rows for layout {layout!r}")
    best = min(candidates, key=lambda r: r.series()[series])
    return best.b

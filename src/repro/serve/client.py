"""The prediction client: one API over in-process and HTTP transports.

:class:`PredictionClient` speaks the v1 wire schema
(:mod:`repro.serve.protocol`) against either

* an :class:`InProcessTransport` — calls
  :meth:`repro.serve.server.PredictionService.handle` directly, which is
  how the hermetic test harness and the load benchmark drive the server
  without opening sockets, or
* an :class:`HTTPTransport` — ``urllib`` against a running ``repro
  serve`` endpoint.

Both return the same response documents, so code written against the
in-process client runs unchanged against a real server::

    from repro.serve import PredictionClient, PredictionService

    with PredictionService() as service:
        client = PredictionClient.in_process(service)
        answer = client.predict(n=480, b=30, layout="diagonal")
        print(answer.prediction_us["standard"], answer.digest)

    client = PredictionClient.http("http://127.0.0.1:8787")
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = [
    "PredictionError",
    "Prediction",
    "InProcessTransport",
    "HTTPTransport",
    "PredictionClient",
]


class PredictionError(RuntimeError):
    """A non-ok response document (carries the full document)."""

    def __init__(self, doc: Mapping):
        self.doc = dict(doc)
        super().__init__(doc.get("error", "prediction request failed"))

    @property
    def code(self) -> int:
        return int(self.doc.get("code", 500))


@dataclass(frozen=True)
class Prediction:
    """One response document with convenience accessors."""

    doc: dict

    @property
    def ok(self) -> bool:
        return self.doc.get("status") == "ok"

    def raise_for_status(self) -> "Prediction":
        if not self.ok:
            raise PredictionError(self.doc)
        return self

    @property
    def row(self) -> dict:
        """The full result row (the ``PointSummary`` fields)."""
        return self.doc["result"]

    @property
    def prediction_us(self) -> dict:
        """The engine projection, e.g. ``{"standard": ..., "worstcase": ...}``."""
        return self.doc["prediction_us"]

    @property
    def digest(self) -> str:
        """The canonical per-entry digest (bit-identity gate currency)."""
        return self.doc["digest"]

    @property
    def fingerprint(self) -> str:
        return self.doc["fingerprint"]

    @property
    def cache_tier(self) -> str:
        """Which tier answered: memory | store | computed | inflight."""
        return self.doc["cache"]["tier"]

    @property
    def cache_hit(self) -> bool:
        return bool(self.doc["cache"]["hit"])

    @property
    def manifest(self) -> Optional[str]:
        """Path of the per-request run manifest (``None`` when disabled)."""
        return self.doc.get("manifest")


class InProcessTransport:
    """Hermetic transport: direct calls into a live service (no sockets)."""

    def __init__(self, service):
        self.service = service

    def request(self, doc: Mapping) -> dict:
        return self.service.handle(doc)

    def stats(self) -> dict:
        return self.service.stats()


class HTTPTransport:
    """``urllib`` transport against a running ``repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout_s: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _roundtrip(self, req: urllib.request.Request) -> dict:
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            # error responses are schema documents too; surface them as such
            body = exc.read()
            try:
                return json.loads(body)
            except ValueError:
                raise PredictionError(
                    {"status": "error", "code": exc.code, "error": body.decode(errors="replace")}
                ) from exc

    def request(self, doc: Mapping) -> dict:
        req = urllib.request.Request(
            self.base_url + "/v1/predict",
            data=json.dumps(dict(doc)).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._roundtrip(req)

    def stats(self) -> dict:
        req = urllib.request.Request(self.base_url + "/v1/stats", method="GET")
        return self._roundtrip(req)


class PredictionClient:
    """The user-facing client; construct via :meth:`in_process` or :meth:`http`."""

    def __init__(self, transport):
        self.transport = transport

    @classmethod
    def in_process(cls, service) -> "PredictionClient":
        """A client bound directly to a live :class:`PredictionService`."""
        return cls(InProcessTransport(service))

    @classmethod
    def http(cls, base_url: str, timeout_s: float = 60.0) -> "PredictionClient":
        """A client for a running ``repro serve`` HTTP endpoint."""
        return cls(HTTPTransport(base_url, timeout_s=timeout_s))

    def predict(
        self,
        n: int,
        b: int,
        layout: str,
        *,
        seed: int = 0,
        with_measured: bool = False,
        machine: Optional[Mapping] = None,
        engine: str = "both",
        uq=None,
        check: bool = True,
    ) -> Prediction:
        """Request one point; raises :class:`PredictionError` unless ``check=False``.

        ``machine`` is a partial ``{"L", "o", "g", "G", "P"}`` document
        (omitted fields take the server's defaults); ``uq`` accepts a
        :class:`repro.uq.UQSpec` or its dict form.
        """
        doc: dict = {
            "app": "ge",
            "n": n,
            "b": b,
            "layout": layout,
            "seed": seed,
            "with_measured": with_measured,
            "engine": engine,
        }
        if machine is not None:
            doc["machine"] = dict(machine)
        if uq is not None:
            doc["uq"] = uq.to_dict() if hasattr(uq, "to_dict") else dict(uq)
        return self.predict_doc(doc, check=check)

    def predict_doc(self, doc: Mapping, check: bool = True) -> Prediction:
        """Send a raw request document as-is (loose spellings welcome)."""
        prediction = Prediction(self.transport.request(doc))
        return prediction.raise_for_status() if check else prediction

    def stats(self) -> dict:
        """The server's statistics document."""
        return self.transport.stats()

"""Prediction-as-a-service: the long-running ``repro serve`` layer.

The paper's promise is *predictions cheap enough to ask often*; this
package turns the reproduction into a prediction server so a scheduler
(or a curl one-liner) can ask "how long will GE with ``n``, ``b``,
``layout`` take on this machine?" and get an answer in microseconds when
it is cached, and exactly one simulation when it is not.

Composition (each piece usable alone):

* :mod:`~repro.serve.protocol` — the v1 wire schema: canonical
  :class:`PredictRequest`, request fingerprints, per-entry digests.
* :mod:`~repro.serve.cache` — tier 1: the fingerprint-keyed LRU.
* :mod:`~repro.serve.batcher` — the batching window and its worker.
* :mod:`~repro.serve.server` — :class:`PredictionService` (tiers,
  single-flight, manifests, stats) plus the stdlib HTTP front-end.
* :mod:`~repro.serve.client` — :class:`PredictionClient` over in-process
  (hermetic) and HTTP transports.

Start a server with ``python -m repro serve --store .repro/store``; see
README section "Prediction as a service" and DESIGN.md section 12.
"""

from .batcher import Batcher, PendingRequest
from .cache import CacheEntry, LRUCache
from .client import (
    HTTPTransport,
    InProcessTransport,
    Prediction,
    PredictionClient,
    PredictionError,
)
from .protocol import ENGINES, SCHEMA, PredictRequest, ProtocolError, point_digest
from .server import PredictionService, ServeConfig, make_handler, serve_http

__all__ = [
    "SCHEMA",
    "ENGINES",
    "ProtocolError",
    "PredictRequest",
    "point_digest",
    "CacheEntry",
    "LRUCache",
    "Batcher",
    "PendingRequest",
    "ServeConfig",
    "PredictionService",
    "make_handler",
    "serve_http",
    "PredictionClient",
    "Prediction",
    "PredictionError",
    "InProcessTransport",
    "HTTPTransport",
]

"""Request coalescing: the batching window behind the prediction server.

Misses arriving at the server do not each launch their own sweep.  The
first miss opens a *batching window*; every further miss landing inside
it (up to ``batch_max``) rides the same batch, which the server then
fans through one grouped :func:`repro.sweep.run_point_batch` call — so a
burst of cold requests costs one sweep-engine dispatch (one executor
decision, shared compiled plans, vectorized lanes), not N.

The batcher owns exactly one worker thread, which gives the layer two
properties for free:

* **Batches are serialised.**  At most one batch executes at a time, so
  per-batch tracer emissions never interleave and the store tier sees
  one writer per server.
* **Resolution is exception-safe.**  The executor callback is
  responsible for resolving every pending future; whatever it leaves
  unresolved (including by raising) is failed with the raised exception,
  so a crashed batch turns into error responses — never hung clients.

Single-flight dedup (identical concurrent misses → one pending future)
lives in the server, *before* submission: the batcher only ever sees one
pending entry per fingerprint.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

__all__ = ["PendingRequest", "Batcher"]


class PendingRequest:
    """One in-flight miss: the canonical request plus its result future.

    ``ctx`` carries the leading request's
    :class:`~repro.obs.telemetry.TraceContext` (``None`` when untraced):
    the batch executor derives the ``serve.batch`` span id from the
    leader's context, which is how a served batch stitches into the
    request's distributed trace.
    """

    __slots__ = ("key", "request", "future", "submitted_s", "ctx")

    def __init__(self, key: str, request, ctx=None) -> None:
        self.key = key
        self.request = request
        self.future: Future = Future()
        self.submitted_s = time.perf_counter()
        self.ctx = ctx


class Batcher:
    """Collects pending misses into window-bounded batches on one thread.

    ``execute`` receives each batch (a non-empty list of
    :class:`PendingRequest`) and must resolve the futures itself — the
    batcher only guarantees that nothing stays unresolved afterwards.
    """

    _STOP = object()

    def __init__(
        self,
        execute: Callable[[Sequence[PendingRequest]], None],
        *,
        window_s: float = 0.01,
        batch_max: int = 64,
        name: str = "repro-serve-batcher",
    ):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.window_s = window_s
        self.batch_max = batch_max
        self._execute = execute
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def submit(self, pending: PendingRequest) -> None:
        """Enqueue one miss (its window opens when the worker picks it up)."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        self._queue.put(pending)

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain and stop the worker thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._STOP)
        self._thread.join(timeout=timeout_s)

    # -- worker --------------------------------------------------------------
    def _run(self) -> None:
        while True:
            head = self._queue.get()
            if head is self._STOP:
                return
            batch = [head]
            deadline = time.perf_counter() + self.window_s
            stop = False
            while len(batch) < self.batch_max:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is self._STOP:
                    stop = True
                    break
                batch.append(item)
            self._dispatch(batch)
            if stop:
                return

    def _dispatch(self, batch: list) -> None:
        try:
            self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - must never kill the worker
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        else:
            for pending in batch:  # pragma: no cover - defensive backstop
                if not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError(
                            f"batch executor left request {pending.key} unresolved"
                        )
                    )

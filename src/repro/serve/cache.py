"""The serve layer's tier-1 cache: a fingerprint-keyed, thread-safe LRU.

One :class:`CacheEntry` is one finished evaluation: the flat result row
(the :class:`repro.experiments.PointSummary` fields), its canonical
digest, which tier produced it, and the run-manifest reference of the
run that computed it.  Entries are immutable; the cache only ever swaps
whole entries, so readers never observe a partially-updated value.

The LRU sits in front of the shared :class:`~repro.experiments.ExperimentStore`
(tier 2) and the sweep engine (tier 3, misses only) — see
:mod:`repro.serve.server` for the composition and DESIGN.md section 12
for the hierarchy's invariants.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["CacheEntry", "LRUCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached evaluation result (immutable)."""

    #: the flat PointSummary-shaped result row
    row: Mapping
    #: canonical per-entry digest (:func:`repro.serve.protocol.point_digest`)
    digest: str
    #: which tier produced the value: ``store`` or ``computed``
    tier: str
    #: run-manifest path of the batch that computed the entry (``None``
    #: when manifests are disabled or the value came off the store tier)
    manifest: Optional[str] = None
    #: the computing batch's metadata, e.g. ``{"id": 3, "points": 2}``
    batch: Optional[dict] = field(default=None)


class LRUCache:
    """A bounded, thread-safe, fingerprint-keyed LRU of cache entries.

    ``get`` promotes to most-recently-used; ``put`` evicts the least
    recently used entry beyond ``capacity``.  Hit/miss/eviction tallies
    are kept internally (lock-protected, exact) so the server's stats
    do not depend on a tracer being installed.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[CacheEntry]:
        """The entry under ``key`` (promoted), or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        """Insert/replace ``key`` as most-recently-used, evicting beyond capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """JSON-ready tallies (size, capacity, hits, misses, evictions)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

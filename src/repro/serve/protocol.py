"""The serve wire schema: canonical prediction requests and entry digests.

A prediction request names one evaluation point — ``(app, n, b, layout,
machine, seed, optional UQ spec)`` — plus presentation-only fields (the
``engine`` projection).  Clients send loose JSON; the server answers from
a cache keyed by *meaning*, so this module's whole job is to collapse
every spelling of the same request onto one canonical value:

* **Defaults are applied before fingerprinting.**  An omitted field and
  its explicitly-spelled default produce the same
  :class:`PredictRequest`, hence the same cache key.
* **Key order and whitespace never matter.**  Canonicalisation goes
  through parsed values, and :meth:`PredictRequest.canonical_json` emits
  one sorted, separator-normalised encoding.
* **Identity UQ specs collapse to "no spec".**  A
  :class:`~repro.uq.UQSpec` with zero noise and no overrides evaluates
  exactly like the deterministic path (see
  :meth:`repro.uq.UQSpec.is_identity`), so it canonicalises to ``None``
  and shares cache entries with spec-free requests — the same rule the
  experiment store applies via :meth:`~repro.uq.UQSpec.store_tag`.
* **Presentation stays out of the key.**  ``engine`` selects which
  predicted series the response highlights; every projection of one
  point shares the cached evaluation.

The round-trip contract (property-tested in
``tests/test_serve_protocol.py``): ``from_doc(to_doc(r)) == r`` and
``from_doc`` is insensitive to key order, whitespace and
defaults-vs-omitted spelling.  Unknown keys are rejected — schema drift
must fail loudly, not silently fork the keyspace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.fingerprint import request_fingerprint
from ..core.loggp import MEIKO_CS2, LogGPParameters
from ..layouts import LAYOUTS
from ..uq.spec import UQSpec

__all__ = [
    "SCHEMA",
    "ENGINES",
    "ProtocolError",
    "PredictRequest",
    "point_digest",
]

#: wire-schema identifier carried by responses
SCHEMA = "repro.serve/v1"

#: accepted response projections (``both`` reports the two predictions)
ENGINES = ("standard", "worstcase", "both")

#: request keys the v1 schema knows (anything else is an error)
_REQUEST_KEYS = frozenset(
    {
        "app", "n", "b", "layout", "seed", "with_measured", "machine",
        "engine", "uq", "trace",
    }
)

#: machine keys of the wire schema.  ``name`` is deliberately absent: the
#: machine's identity is its numbers, and a display label must never fork
#: the cache keyspace.
_MACHINE_KEYS = ("L", "o", "g", "G", "P")

#: the resolved-machine label (constant, so it cannot affect fingerprints)
_MACHINE_NAME = "serve"


class ProtocolError(ValueError):
    """A request document that does not parse against the v1 schema."""


def _require_int(doc: Mapping, key: str, default=None) -> int:
    if key not in doc:
        if default is None:
            raise ProtocolError(f"missing required field {key!r}")
        return default
    value = doc[key]
    # bool is an int subclass; reject it — `"n": true` is never meant
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer, got {value!r}")
    return value


def _parse_machine(doc: Any, defaults: LogGPParameters) -> LogGPParameters:
    if doc is None:
        doc = {}
    if not isinstance(doc, Mapping):
        raise ProtocolError(f"'machine' must be an object, got {doc!r}")
    unknown = set(doc) - set(_MACHINE_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown machine keys: {sorted(unknown)} (known: {list(_MACHINE_KEYS)})"
        )
    values: dict[str, Any] = {}
    for key in ("L", "o", "g", "G"):
        raw = doc.get(key, getattr(defaults, key))
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ProtocolError(f"machine.{key} must be a number, got {raw!r}")
        values[key] = float(raw)
    if "P" in doc:
        if isinstance(doc["P"], bool) or not isinstance(doc["P"], int):
            raise ProtocolError(f"machine.P must be an integer, got {doc['P']!r}")
        values["P"] = doc["P"]
    else:
        values["P"] = defaults.P
    try:
        return LogGPParameters(name=_MACHINE_NAME, **values)
    except ValueError as exc:
        raise ProtocolError(f"invalid machine: {exc}") from exc


@dataclass(frozen=True)
class PredictRequest:
    """One canonical prediction request (the unit the cache keys on).

    ``params`` always carries the constant resolved-machine label, and
    ``uq`` is ``None`` whenever the requested spec is an identity — both
    invariants are established by :meth:`from_doc` and preserved by
    :meth:`to_doc`, so equality of two instances is equality of meaning.
    """

    n: int
    b: int
    layout: str
    seed: int
    with_measured: bool
    params: LogGPParameters
    engine: str = "both"
    uq: Optional[UQSpec] = None
    #: client-supplied upstream trace context ``(trace_id, span_id)`` —
    #: pure correlation (the request span parents under it; see
    #: :mod:`repro.obs.telemetry`), never identity: excluded from
    #: equality, the canonical document and the cache fingerprint, so a
    #: traced and an untraced spelling of one point share the entry
    trace: Optional[tuple] = field(default=None, compare=False)

    @classmethod
    def from_doc(
        cls,
        doc: Mapping,
        machine_defaults: Optional[LogGPParameters] = None,
    ) -> "PredictRequest":
        """Parse, validate and canonicalise one request document.

        ``machine_defaults`` fills omitted machine fields (the server's
        configured default machine; :data:`repro.core.MEIKO_CS2` when
        unset).  Raises :class:`ProtocolError` on anything that does not
        conform to the v1 schema.
        """
        if not isinstance(doc, Mapping):
            raise ProtocolError(f"request must be a JSON object, got {doc!r}")
        unknown = set(doc) - _REQUEST_KEYS
        if unknown:
            raise ProtocolError(
                f"unknown request keys: {sorted(unknown)} "
                f"(known: {sorted(_REQUEST_KEYS)})"
            )
        app = doc.get("app", "ge")
        if app != "ge":
            raise ProtocolError(f"unknown app {app!r}; this server predicts 'ge'")
        n = _require_int(doc, "n")
        b = _require_int(doc, "b")
        if n < 1 or b < 1:
            raise ProtocolError(f"n and b must be >= 1, got n={n}, b={b}")
        if n % b:
            raise ProtocolError(f"block size {b} does not divide n={n}")
        layout = doc.get("layout")
        if layout not in LAYOUTS:
            raise ProtocolError(
                f"unknown layout {layout!r}; known: {sorted(LAYOUTS)}"
            )
        seed = _require_int(doc, "seed", default=0)
        with_measured = doc.get("with_measured", False)
        if not isinstance(with_measured, bool):
            raise ProtocolError(
                f"'with_measured' must be a boolean, got {with_measured!r}"
            )
        engine = doc.get("engine", "both")
        if engine not in ENGINES:
            raise ProtocolError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        params = _parse_machine(
            doc.get("machine"), machine_defaults or MEIKO_CS2
        )
        uq: Optional[UQSpec] = None
        raw_uq = doc.get("uq")
        if raw_uq is not None:
            if not isinstance(raw_uq, Mapping):
                raise ProtocolError(f"'uq' must be an object, got {raw_uq!r}")
            try:
                uq = UQSpec.from_dict(raw_uq)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid uq spec: {exc}") from exc
            if uq.is_identity():
                uq = None  # identity evaluates exactly like no spec
        trace: Optional[tuple] = None
        raw_trace = doc.get("trace")
        if raw_trace is not None:
            if not isinstance(raw_trace, Mapping):
                raise ProtocolError(f"'trace' must be an object, got {raw_trace!r}")
            unknown_trace = set(raw_trace) - {"trace_id", "span_id"}
            if unknown_trace:
                raise ProtocolError(
                    f"unknown trace keys: {sorted(unknown_trace)} "
                    "(known: ['span_id', 'trace_id'])"
                )
            tid = raw_trace.get("trace_id")
            sid = raw_trace.get("span_id")
            if not (isinstance(tid, str) and tid and isinstance(sid, str) and sid):
                raise ProtocolError(
                    "'trace' needs non-empty string trace_id and span_id, "
                    f"got {raw_trace!r}"
                )
            trace = (tid, sid)
        return cls(
            n=n, b=b, layout=layout, seed=seed, with_measured=with_measured,
            params=params, engine=engine, uq=uq, trace=trace,
        )

    # -- canonical encodings -------------------------------------------------
    def to_doc(self) -> dict:
        """The canonical, fully-explicit request document.

        Every field is spelled out (no reliance on receiver defaults), so
        the document round-trips through :meth:`from_doc` unchanged under
        any ``machine_defaults``.
        """
        return {
            "app": "ge",
            "n": self.n,
            "b": self.b,
            "layout": self.layout,
            "seed": self.seed,
            "with_measured": self.with_measured,
            "machine": {
                "L": self.params.L,
                "o": self.params.o,
                "g": self.params.g,
                "G": self.params.G,
                "P": self.params.P,
            },
            "engine": self.engine,
            "uq": self.uq.to_dict() if self.uq is not None else None,
        }

    def canonical_json(self) -> str:
        """One sorted, whitespace-free encoding of :meth:`to_doc`."""
        return json.dumps(self.to_doc(), sort_keys=True, separators=(",", ":"))

    def uq_tag(self) -> Optional[str]:
        """The store/fingerprint tag of the UQ spec (``None``: spec-free)."""
        return self.uq.store_tag() if self.uq is not None else None

    def fingerprint(self, cost_model) -> str:
        """The cache key: the evaluation's canonical fingerprint.

        Composes :func:`repro.core.fingerprint.request_fingerprint` with
        the UQ tag.  ``engine`` is presentation and deliberately absent —
        every projection of one point shares the entry.
        """
        return request_fingerprint(
            self.n, self.b, self.layout, self.params, cost_model,
            seed=self.seed, with_measured=self.with_measured,
            extra=self.uq_tag(),
        )

    def describe(self) -> str:
        """Short human-readable label (logs, manifests)."""
        uq = f" uq={self.uq.fingerprint()}" if self.uq is not None else ""
        return (
            f"ge n={self.n} b={self.b} {self.layout} seed={self.seed}"
            f" P={self.params.P}{uq}"
        )


def point_digest(row: Mapping) -> str:
    """SHA-256 over one canonical result row.

    The single-point sibling of :meth:`repro.sweep.SweepResult.digest`
    (same canonical JSON encoding, one row instead of the grid), so a
    served answer and a directly-computed
    :class:`~repro.experiments.PointSummary` agree on the digest iff they
    agree on every value — the served-vs-direct bit-identity gate of
    ``benchmarks/bench_serve.py`` and the serve test suites.
    """
    payload = json.dumps(dict(row), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()

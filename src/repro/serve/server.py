"""The prediction service: layered cache, single-flight, HTTP front-end.

:class:`PredictionService` answers canonical prediction requests
(:mod:`repro.serve.protocol`) through a three-tier hierarchy:

1. **memory** — the fingerprint-keyed :class:`~repro.serve.cache.LRUCache`,
2. **store** — the shared :class:`~repro.experiments.ExperimentStore`
   (``run_sweep``'s resume short-circuit reads it; the progress
   callback's ``source`` attribution tells the serve layer it hit), and
3. **computed** — a real simulation, reached only through the batching
   window: misses coalesce into one grouped
   :func:`repro.sweep.run_point_batch` call per window.

Concurrent identical misses are *single-flighted*: the first becomes the
batch leader, later arrivals attach to the same future (tier
``inflight``) and every response carries the identical entry digest.
Failures resolve the futures exceptionally and cache nothing, so a
transient error never poisons the keyspace.

Thread discipline
-----------------
The repo's :class:`~repro.obs.Tracer` is deliberately not thread-safe
(``run_sweep`` refuses the thread executor under tracing for the same
reason).  The serve layer therefore funnels *every* ambient-tracer
emission through one internal lock: request threads take it only for
their two per-request spans, and the batcher — whose batches are already
serialised by its single worker thread — holds it across the whole
grouped sweep so sweep-internal emissions never interleave with request
spans.  Service statistics (tier tallies, latency quantiles) use plain
lock-protected counters and work with tracing disabled.

The HTTP front-end is a stdlib ``ThreadingHTTPServer`` speaking JSON
(``POST /v1/predict``, ``GET /healthz``, ``GET /v1/stats``).  Tests
drive the very same handler hermetically over in-memory streams — no
sockets in tier 1 (see ``tests/test_serve_server.py``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Mapping, Optional

from ..core.costmodel import CalibratedCostModel
from ..core.loggp import MEIKO_CS2, LogGPParameters
from ..obs.events import WALL_TRACK, get_tracer
from ..obs.log import log_event
from ..obs.manifest import RunRecord, loggp_dict
from ..obs.metrics import MetricsRegistry, QuantileTracker
from ..obs.telemetry import TraceContext
from ..sweep.batch import BatchItem, run_point_batch
from ..sweep.points import SweepPoint
from .batcher import Batcher, PendingRequest
from .cache import CacheEntry, LRUCache
from .protocol import SCHEMA, PredictRequest, ProtocolError, point_digest

__all__ = ["ServeConfig", "PredictionService", "make_handler", "serve_http"]


@dataclass
class ServeConfig:
    """How one :class:`PredictionService` is wired.

    ``store_dir`` enables the store tier (``None``: memory + compute
    only).  ``workers``/``executor`` are forwarded to each grouped sweep
    (``executor="auto"`` rides the self-tuning executor).
    ``manifest_dir`` enables per-request and per-batch run manifests.
    ``machine`` fills machine fields requests omit.
    """

    store_dir: Optional[str] = None
    cache_size: int = 4096
    batch_window_s: float = 0.01
    batch_max: int = 64
    workers: Optional[int] = None
    executor: Optional[str] = None
    manifest_dir: Optional[str] = None
    machine: LogGPParameters = MEIKO_CS2
    #: how long one request may wait on its batch before erroring out
    request_timeout_s: Optional[float] = 300.0


class PredictionService:
    """The in-process prediction server (transport-agnostic core).

    ``handle(doc)`` is the entire API surface: one loose JSON request
    document in, one JSON-ready response document out.  The HTTP handler
    and the in-process client are both thin shims over it.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cost_model=None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.cost_model = (
            cost_model if cost_model is not None else CalibratedCostModel()
        )
        self.cache = LRUCache(self.config.cache_size)
        #: fingerprint -> PendingRequest of the in-flight computation
        self._inflight: dict[str, PendingRequest] = {}
        self._flight_lock = threading.Lock()
        #: serialises every ambient-tracer emission (see module docstring)
        self._obs_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._tiers = {"memory": 0, "store": 0, "computed": 0, "inflight": 0}
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._batch_points = 0
        self._batch_max_size = 0
        #: batch size -> occurrence count (the /v1/stats distribution)
        self._batch_sizes: dict[int, int] = {}
        self._request_seq = 0
        #: per-(parent, name) child sequence for request trace contexts
        self._trace_seq = 0
        self._started_unix = time.time()
        #: service-local metrics registry, exposed at GET /metrics
        self.metrics = MetricsRegistry()
        #: the service's own trace root (requests without an upstream
        #: context and without an ambient tracer context parent here)
        self.trace_root = TraceContext.root("serve", self._started_unix)
        self.latency_us = QuantileTracker("serve.request_latency_us")
        self._closed = False
        self._batcher = Batcher(
            self._execute_batch,
            window_s=self.config.batch_window_s,
            batch_max=self.config.batch_max,
        )

    # -- request path --------------------------------------------------------
    def handle(self, doc: Mapping) -> dict:
        """Answer one request document (thread-safe, blocking on misses)."""
        t0 = time.perf_counter()
        try:
            request = PredictRequest.from_doc(
                doc, machine_defaults=self.config.machine
            )
        except ProtocolError as exc:
            return self._error_response(400, str(exc))
        key = request.fingerprint(self.cost_model)
        parent_ctx, req_ctx = self._request_context(request)
        c0 = time.perf_counter()
        entry = self.cache.get(key)
        tier = "memory"
        if entry is None:
            kind, payload = self._resolve_miss(key, request, req_ctx)
            if kind == "hit":
                entry = payload
            else:
                try:
                    entry = payload.result(timeout=self.config.request_timeout_s)
                except Exception as exc:  # noqa: BLE001 - becomes a 500 doc
                    return self._error_response(
                        500, f"prediction failed: {exc}", fingerprint=key
                    )
                tier = entry.tier if kind == "leader" else "inflight"
        c1 = time.perf_counter()
        self._emit_span(
            "serve.cache", c0, c1, tier=tier, fingerprint=key,
            **self._span_ids(req_ctx.child("serve.cache", 0), req_ctx),
        )
        manifest = self._write_request_manifest(request, key, entry, tier)
        t1 = time.perf_counter()
        latency_us = (t1 - t0) * 1e6
        with self._stats_lock:
            self._requests += 1
            self._tiers[tier] += 1
            self.latency_us.observe(latency_us)
            self.metrics.counter("serve.requests").inc()
            self.metrics.counter(f"serve.tier.{tier}").inc()
            self.metrics.histogram("serve.latency_us").observe(latency_us)
        self._emit_span(
            "serve.request", t0, t1, tier=tier,
            **self._span_ids(req_ctx, parent_ctx),
        )
        self._emit_count(f"serve.cache.{tier}")
        log_event(
            "serve.request", tier=tier, fingerprint=key,
            latency_us=latency_us,
            trace_id=req_ctx.trace_id, span_id=req_ctx.span_id,
        )
        return self._ok_response(
            request, key, entry, tier, manifest, latency_us,
            req_ctx=req_ctx, parent_ctx=parent_ctx,
        )

    def _request_context(self, request):
        """The trace node of one request and the parent it hangs under.

        Parent resolution order: the client's ``trace`` field (an
        upstream system's context), else the ambient tracer's installed
        context (a traced ``repro serve`` run), else the service's own
        root.  The child sequence is a service-global counter, so every
        request span id is unique even across identical requests.
        """
        if request.trace is not None:
            parent = TraceContext(
                trace_id=request.trace[0], span_id=request.trace[1]
            )
        else:
            parent = getattr(get_tracer(), "context", None) or self.trace_root
        with self._stats_lock:
            seq = self._trace_seq
            self._trace_seq += 1
        return parent, parent.child("serve.request", seq)

    @staticmethod
    def _span_ids(ctx, parent) -> dict:
        return {
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_span_id": parent.span_id,
        }

    def _resolve_miss(self, key: str, request: PredictRequest, ctx=None):
        """Single-flight gate: join the in-flight future or lead a new one.

        Returns ``("hit", entry)`` when a batch landed between the
        caller's cache miss and this lock acquisition, ``("follower",
        future)`` when the key is already being computed, or ``("leader",
        future)`` after submitting a fresh pending request to the
        batcher.
        """
        with self._flight_lock:
            entry = self.cache.get(key)
            if entry is not None:
                return "hit", entry
            pending = self._inflight.get(key)
            if pending is not None:
                return "follower", pending.future
            pending = PendingRequest(key, request, ctx=ctx)
            self._inflight[key] = pending
        self._batcher.submit(pending)
        return "leader", pending.future

    # -- batch execution (batcher worker thread) -----------------------------
    def _execute_batch(self, batch) -> None:
        """Run one coalesced batch and resolve every pending future.

        Ordering is load-bearing: entries are cached *before* the
        in-flight keys are released (so no key is ever neither cached nor
        in flight), and the ``serve.batch`` span is emitted *before* any
        future resolves (so a response implies its batch span is already
        in the buffer — the single-flight suite counts on it).  Errors
        release the keys first, then fail the futures, caching nothing.
        """
        t0 = time.perf_counter()
        with self._stats_lock:
            self._batches += 1
            batch_id = self._batches
        items = [
            BatchItem(
                point=SweepPoint(
                    n=p.request.n,
                    b=p.request.b,
                    layout=p.request.layout,
                    seed=p.request.seed,
                    with_measured=p.request.with_measured,
                ),
                params=p.request.params,
                uq=p.request.uq,
            )
            for p in batch
        ]
        # the batch span hangs under the *leading* request's context, so
        # the whole coalesced computation stitches into one request tree
        leader_ctx = batch[0].ctx
        batch_ctx = (
            leader_ctx.child("serve.batch", batch_id)
            if leader_ctx is not None
            else None
        )
        try:
            tracer = get_tracer()
            if tracer.enabled:
                with self._obs_lock:
                    # install the batch context so every sweep-interior
                    # span (sweep.chunk, kernel, DES) parents under it
                    prev_ctx = getattr(tracer, "context", None)
                    tracer.context = batch_ctx
                    try:
                        result = run_point_batch(
                            items,
                            self.cost_model,
                            store_dir=self.config.store_dir,
                            workers=self.config.workers,
                            executor=self.config.executor,
                        )
                    finally:
                        tracer.context = prev_ctx
            else:
                result = run_point_batch(
                    items,
                    self.cost_model,
                    store_dir=self.config.store_dir,
                    workers=self.config.workers,
                    executor=self.config.executor,
                )
        except Exception as exc:  # noqa: BLE001 - fanned out to every waiter
            with self._flight_lock:
                for p in batch:
                    self._inflight.pop(p.key, None)
            self._emit_count("serve.batch.error")
            with self._stats_lock:
                self.metrics.counter("serve.batch_errors").inc()
            for p in batch:
                p.future.set_exception(exc)
            return
        t1 = time.perf_counter()
        manifest = self._write_batch_manifest(batch_id, batch, result, t1 - t0)
        batch_info = {"id": batch_id, "points": len(batch), "manifest": manifest}
        resolved = []
        for p, summary, source in zip(batch, result.summaries, result.sources):
            row = dict(summary.__dict__)
            tier = "store" if source == "cached" else "computed"
            entry = CacheEntry(
                row=row,
                digest=point_digest(row),
                tier=tier,
                manifest=manifest,
                batch=batch_info,
            )
            self.cache.put(p.key, entry)
            resolved.append((p, entry))
        with self._stats_lock:
            self._batch_points += len(batch)
            if len(batch) > self._batch_max_size:
                self._batch_max_size = len(batch)
            self._batch_sizes[len(batch)] = self._batch_sizes.get(len(batch), 0) + 1
            self.metrics.counter("serve.batches").inc()
            self.metrics.counter("serve.batch_points").inc(len(batch))
            self.metrics.histogram("serve.batch_size").observe(len(batch))
        trace_attrs = (
            self._span_ids(batch_ctx, leader_ctx) if batch_ctx is not None else {}
        )
        self._emit_span(
            "serve.batch", t0, t1,
            id=batch_id, points=len(batch),
            computed=result.computed, cached=result.cached,
            **trace_attrs,
        )
        log_event(
            "serve.batch", id=batch_id, points=len(batch),
            computed=result.computed, cached=result.cached,
            **(
                {"trace_id": batch_ctx.trace_id, "span_id": batch_ctx.span_id}
                if batch_ctx is not None
                else {}
            ),
        )
        self._emit_count("serve.batch.count")
        self._emit_count("serve.batch.points", len(batch))
        with self._flight_lock:
            for p, _ in resolved:
                self._inflight.pop(p.key, None)
        for p, entry in resolved:
            p.future.set_result(entry)

    # -- responses -----------------------------------------------------------
    def _ok_response(
        self, request, key, entry, tier, manifest, latency_us,
        req_ctx=None, parent_ctx=None,
    ):
        row = dict(entry.row)
        if request.engine == "standard":
            prediction = {"standard": row["pred_standard_total"]}
        elif request.engine == "worstcase":
            prediction = {"worstcase": row["pred_worstcase_total"]}
        else:
            prediction = {
                "standard": row["pred_standard_total"],
                "worstcase": row["pred_worstcase_total"],
            }
        return {
            "schema": SCHEMA,
            "status": "ok",
            "request": request.to_doc(),
            "fingerprint": key,
            "cache": {"tier": tier, "hit": tier != "computed"},
            "prediction_us": prediction,
            "result": row,
            "digest": entry.digest,
            "manifest": manifest,
            "batch": entry.batch,
            "latency_us": latency_us,
            "trace": (
                {
                    "trace_id": req_ctx.trace_id,
                    "span_id": req_ctx.span_id,
                    "parent_span_id": (
                        parent_ctx.span_id if parent_ctx is not None else None
                    ),
                }
                if req_ctx is not None
                else None
            ),
        }

    def _error_response(self, code: int, message: str, **extra) -> dict:
        with self._stats_lock:
            self._requests += 1
            self._errors += 1
            self.metrics.counter("serve.requests").inc()
            self.metrics.counter("serve.errors").inc()
        self._emit_count("serve.request.error")
        doc = {"schema": SCHEMA, "status": "error", "code": code, "error": message}
        doc.update(extra)
        return doc

    # -- manifests -----------------------------------------------------------
    def _write_request_manifest(self, request, key, entry, tier) -> Optional[str]:
        if self.config.manifest_dir is None:
            return None
        with self._stats_lock:
            self._request_seq += 1
            seq = self._request_seq
        rec = RunRecord.begin("serve.request")
        rec.note(
            engine="serve",
            params=loggp_dict(request.params),
            workload=request.to_doc(),
            makespan_us=entry.row.get("pred_standard_total"),
            fingerprint=key,
            digest=entry.digest,
            cache_tier=tier,
            batch=entry.batch,
        )
        rec.finish(status="ok")
        path = Path(self.config.manifest_dir) / f"serve-req-{seq:06d}.json"
        return str(rec.write(path))

    def _write_batch_manifest(self, batch_id, batch, result, wall_s) -> Optional[str]:
        if self.config.manifest_dir is None:
            return None
        rec = RunRecord.begin("serve.batch")
        rec.note(
            engine="serve",
            workload={
                "batch_id": batch_id,
                "points": [p.request.describe() for p in batch],
            },
            batch={
                "id": batch_id,
                "points": len(batch),
                "computed": result.computed,
                "cached": result.cached,
                "groups": len(result.group_stats),
                "wall_s": wall_s,
            },
        )
        rec.finish(status="ok")
        path = Path(self.config.manifest_dir) / f"serve-batch-{batch_id:06d}.json"
        return str(rec.write(path))

    # -- observability -------------------------------------------------------
    def _emit_span(self, name: str, t0: float, t1: float, **attrs) -> None:
        """One wall-track slice through the service's emission lock."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        with self._obs_lock:
            tracer.slice(
                name, proc=-1, ts=t0 * 1e6, dur=(t1 - t0) * 1e6,
                track=WALL_TRACK, **attrs,
            )

    def _emit_count(self, name: str, value: float = 1.0) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        with self._obs_lock:
            tracer.count(name, value)

    # -- introspection and lifecycle -----------------------------------------
    def stats(self) -> dict:
        """JSON-ready service statistics (tiers, batches, latency quantiles).

        The tier tallies are the authoritative hit accounting (the LRU's
        own counters tally *lookups*, which exceed requests because the
        single-flight gate re-checks under its lock).
        """
        with self._stats_lock:
            tiers = dict(self._tiers)
            requests = self._requests
            errors = self._errors
            batches = {
                "count": self._batches,
                "points": self._batch_points,
                "max_size": self._batch_max_size,
                # JSON object keys are strings; sorted for stable output
                "sizes": {
                    str(size): count
                    for size, count in sorted(self._batch_sizes.items())
                },
            }
            latency = self.latency_us.snapshot(quantiles=(0.5, 0.9, 0.99))
        with self._flight_lock:
            inflight = len(self._inflight)
        ok = requests - errors
        hits = tiers["memory"] + tiers["store"] + tiers["inflight"]
        # per-tier hit/miss: a request *misses* a tier when it had to fall
        # through to a deeper one (inflight joins skip the deeper tiers)
        cache_tiers = {
            "memory": {"hits": tiers["memory"], "misses": ok - tiers["memory"]},
            "store": {"hits": tiers["store"], "misses": tiers["computed"]},
            "inflight": {"dedups": tiers["inflight"]},
        }
        return {
            "schema": SCHEMA,
            "uptime_s": time.time() - self._started_unix,
            "requests": {"total": requests, "ok": ok, "error": errors},
            "tiers": tiers,
            "cache_tiers": cache_tiers,
            "hit_rate": (hits / ok) if ok else None,
            "batches": batches,
            "cache": self.cache.stats(),
            "inflight": inflight,
            "latency_us": latency,
            "store_dir": self.config.store_dir,
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` document (Prometheus text exposition).

        One registry view folded from three sources: the service's own
        counters/histograms, the ambient tracer's registry when tracing
        is enabled (sweep decisions, event tallies — read under the
        emission lock), and point-in-time gauges (uptime, in-flight
        keys, LRU occupancy).  Latency quantiles ride as extra samples —
        they come from a bounded window, not an additive metric, so they
        stay out of the registry proper.
        """
        view = MetricsRegistry()
        with self._stats_lock:
            view.merge(self.metrics.snapshot())
            latency = self.latency_us.snapshot(quantiles=(0.5, 0.9, 0.99))
        tracer = get_tracer()
        if tracer.enabled:
            with self._obs_lock:
                view.merge(tracer.metrics.snapshot())
        with self._flight_lock:
            inflight = len(self._inflight)
        view.gauge("serve.uptime_s").set(time.time() - self._started_unix)
        view.gauge("serve.inflight").set(inflight)
        for name, value in self.cache.stats().items():
            if isinstance(value, (int, float)):
                view.gauge(f"serve.cache.{name}").set(value)
        extras = [
            ("repro_serve_latency_us", {"quantile": q}, latency[key])
            for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))
            if latency.get(key) is not None
        ]
        return view.to_prometheus(extra_samples=extras)

    def close(self) -> None:
        """Stop the batcher thread (idempotent; pending batches drain)."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- HTTP front-end ----------------------------------------------------------
class _ServeHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP shim around one :class:`PredictionService`.

    Subclasses produced by :func:`make_handler` bind ``service``.  The
    handler is deliberately transport-thin so tests can drive it over
    in-memory streams (``handle_one_request`` against ``BytesIO``) —
    byte-identical to what a socket client sees.
    """

    service: PredictionService
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def _reply(self, code: int, doc: dict) -> None:
        body = json.dumps(doc).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        # drain the body before routing: an unread body would be parsed
        # as the next request line by the keep-alive loop
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        if self.path != "/v1/predict":
            self._reply(
                404,
                {
                    "schema": SCHEMA,
                    "status": "error",
                    "code": 404,
                    "error": f"unknown path {self.path!r}",
                },
            )
            return
        try:
            doc = json.loads(raw or b"null")
        except ValueError as exc:
            self._reply(
                400,
                {
                    "schema": SCHEMA,
                    "status": "error",
                    "code": 400,
                    "error": f"request body is not JSON: {exc}",
                },
            )
            return
        response = self.service.handle(doc)
        code = 200 if response.get("status") == "ok" else int(response.get("code", 500))
        self._reply(code, response)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._reply(200, {"schema": SCHEMA, "status": "ok"})
        elif self.path == "/v1/stats":
            self._reply(200, self.service.stats())
        elif self.path == "/metrics":
            self._reply_text(
                200, self.service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._reply(
                404,
                {
                    "schema": SCHEMA,
                    "status": "error",
                    "code": 404,
                    "error": f"unknown path {self.path!r}",
                },
            )

    def log_message(self, format, *args) -> None:  # noqa: A002 - stdlib API
        pass  # request logging goes through the tracer, not stderr


def make_handler(service: PredictionService):
    """A request-handler class bound to ``service``."""
    return type("BoundServeHandler", (_ServeHandler,), {"service": service})


def serve_http(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 8787,
) -> ThreadingHTTPServer:
    """A ready ``ThreadingHTTPServer`` (caller runs ``serve_forever``)."""
    server = ThreadingHTTPServer((host, port), make_handler(service))
    server.daemon_threads = True
    return server

"""The opt-in fast simulation kernel.

Everything under :mod:`repro.kernel` is a *performance twin* of a
reference implementation elsewhere in the package: same inputs, same
outputs bit for bit, less interpreter overhead.  The hot modules
(:mod:`repro.core.standard_sim`, :mod:`repro.core.worstcase_sim`,
:mod:`repro.core.des_check`, :mod:`repro.core.program_sim`,
:mod:`repro.machine.emulator`, :mod:`repro.core.predictor`) dispatch
here when :data:`repro.kernel.flags.enabled` is set — via ``REPRO_FAST=1``
in the environment or :func:`fast_path` / :func:`set_enabled` in code.

Bit-identity is not an aspiration but a gate: the differential oracle
(``tests/test_kernel_differential.py``) and the hypothesis property
suite (``tests/test_kernel_property.py``) compare the fast and reference
paths event-by-event on every application, layout and engine, and the
sweep/UQ digests with the fast path on must equal the checked-in
reference digests.  ``benchmarks/bench_kernel.py`` records the resulting
steady-state throughput into ``BENCH_kernel.json`` for the CI guard.

Submodules
----------
flags
    The global switch (leaf module; safe to import from hot paths).
memo
    Fingerprint-keyed memoisation of pure cost functions.
fastsim
    Tight-loop twins of the two Figure 2-style step simulators.
fastdes
    Flat-heap, sequence-exact twin of the causal DES cross-check.
tracecache
    Shared GE program traces for sweep/UQ replicates.
vector
    Structure-of-arrays batch simulator: many sweep points per step.

``fastsim``/``fastdes``/``tracecache``/``vector`` import the modules they twin, so
this ``__init__`` loads them lazily — the hot modules can import
``repro.kernel`` at module scope without a cycle.
"""

from __future__ import annotations

from . import flags
from .flags import fast_path, is_enabled, set_enabled
from .memo import MemoizedCostModel, clear_caches, memoize, send_durations

__all__ = [
    "flags",
    "fast_path",
    "is_enabled",
    "set_enabled",
    "MemoizedCostModel",
    "memoize",
    "send_durations",
    "clear_caches",
    "clear_all_caches",
    "ge_trace",
    "clear_trace_cache",
    "simulate_standard_fast",
    "simulate_worstcase_fast",
    "simulate_causal_fast",
    "ge_plan",
    "clear_plan_cache",
    "compile_plan",
    "simulate_programs_batch",
    "evaluate_ge_points_batch",
]

_LAZY = {
    "ge_trace": "tracecache",
    "clear_trace_cache": "tracecache",
    "simulate_standard_fast": "fastsim",
    "simulate_worstcase_fast": "fastsim",
    "simulate_causal_fast": "fastdes",
    "ge_plan": "vector",
    "clear_plan_cache": "vector",
    "compile_plan": "vector",
    "simulate_programs_batch": "vector",
    "evaluate_ge_points_batch": "vector",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def clear_all_caches() -> None:
    """Reset every kernel cache (cost memos, send tables, traces, plans)."""
    clear_caches()
    import sys

    tracecache = sys.modules.get(f"{__name__}.tracecache")
    if tracecache is not None:
        tracecache.clear_trace_cache()
    vector = sys.modules.get(f"{__name__}.vector")
    if vector is not None:
        vector.clear_plan_cache()

"""The fast-path switch (leaf module: importable from anywhere, imports nothing).

``enabled`` is read directly by the hot paths (``flags.enabled`` is one
attribute load), so keep it a plain module-level bool.  The initial value
comes from ``REPRO_FAST=1`` in the environment — the same opt-in knob the
benchmarks use for "make it fast"; here it additionally routes the step
simulators and the DES cross-check through :mod:`repro.kernel`, which is
proven bit-identical by ``tests/test_kernel_differential.py``, so the two
meanings compose safely.

Programmatic control (tests, benchmarks, sweep workers) goes through
:func:`set_enabled` / :func:`fast_path`, because a worker process spawned
without the environment variable must still honour the parent's setting.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "is_enabled", "set_enabled", "fast_path"]

#: the live switch; read as ``flags.enabled`` on hot paths
enabled: bool = os.environ.get("REPRO_FAST", "") == "1"


def is_enabled() -> bool:
    """Current state of the fast-path switch."""
    return enabled


def set_enabled(on: bool) -> bool:
    """Set the switch; returns the previous state."""
    global enabled
    prev = enabled
    enabled = bool(on)
    return prev


@contextmanager
def fast_path(on: bool = True) -> Iterator[None]:
    """Scoped toggle — the differential tests' on/off lever."""
    prev = set_enabled(on)
    try:
        yield
    finally:
        set_enabled(prev)

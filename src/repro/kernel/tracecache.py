"""Steady-state trace cache for the GE sweep hot path.

Every sweep / UQ replicate of one ``(n, b, layout, P)`` configuration
rebuilds the identical GE program trace — identical *bit for bit*,
because :class:`repro.core.message.CommPattern` allocates message uids
from a per-pattern counter, so a rebuild reproduces every uid and seq.
Rebuilding costs tens of milliseconds per point; a 200-replicate UQ run
pays it 200 times for the same object.

This cache shares one immutable-in-practice trace per configuration
(LRU, small: a paper-scale study touches tens of configurations).  The
simulators and the emulator only *read* traces, so sharing is safe; the
differential harness proves the cached path bit-identical anyway.  The
bookkeeping is lock-guarded so the thread executor's workers can share
one table (a racing rebuild would be bit-identical, but the OrderedDict
reordering itself is not thread-safe).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..apps.gauss import GEConfig, build_ge_trace
from ..layouts import LAYOUTS
from ..trace.program import ProgramTrace

__all__ = ["ge_trace", "clear_trace_cache"]

_CACHE: OrderedDict[tuple[int, int, str, int], ProgramTrace] = OrderedDict()
_LOCK = threading.Lock()
_MAX_TRACES = 32


def ge_trace(n: int, b: int, layout_name: str, P: int) -> ProgramTrace:
    """The (shared) GE trace of one configuration.  Thread-safe."""
    key = (n, b, layout_name, P)
    with _LOCK:
        trace = _CACHE.get(key)
        if trace is not None:
            _CACHE.move_to_end(key)
            return trace
    # Build outside the lock: rebuilds are bit-identical, so a race
    # costs a redundant build, never a wrong trace.
    layout = LAYOUTS[layout_name](n // b, P)
    trace = build_ge_trace(GEConfig(n=n, b=b, layout=layout))
    with _LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            return cached
        _CACHE[key] = trace
        while len(_CACHE) > _MAX_TRACES:
            _CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace."""
    with _LOCK:
        _CACHE.clear()

"""Fast step simulators: bit-identical tight-loop rewrites of Figure 2 & §4.2.

These functions compute exactly what
:func:`repro.core.standard_sim._simulate` and
:func:`repro.core.worstcase_sim._simulate` compute — same
:class:`CommEvent` stream in the same global order, same final clocks,
same RNG consumption — but with the per-operation overhead removed:

* the LogGP gap rules and durations are inlined (the receive→send gap
  ``max(o, g) - o`` is a constant, receive duration is ``o``, send
  durations come from the shared per-machine table in
  :mod:`repro.kernel.memo`);
* the standard algorithm adds a **batched deterministic segment**: after
  the main loop picks the unique minimum-clock sender, that processor
  keeps operating while its clock stays *strictly* below every other
  sender's — precisely the iterations in which the reference rescans all
  processors, finds a singleton tie set, and consumes no randomness.
  Ties (clock equality) always fall back to the outer rescan, so
  ``rng.choice`` is invoked on exactly the same tie sets as the
  reference — bit-equal draws, bit-equal schedules.

Float discipline: every arithmetic expression here is the same sequence
of operations as the reference (e.g. ``arrival = (start + duration) + L``,
never ``start + (duration + L)``), so results are bit-equal, not just
close.  The differential oracle (``tests/test_kernel_differential.py``)
and the hypothesis suite (``tests/test_kernel_property.py``) enforce
this on every app × layout × engine.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Mapping, Optional

import numpy as np

from ..core.events import CommEvent, StepTimeline
from ..core.loggp import LogGPParameters, OpKind
from ..core.message import CommPattern
from ..core.standard_sim import SimulationResult
from ..obs.events import get_tracer
from .memo import send_durations

__all__ = [
    "simulate_standard_fast",
    "simulate_worstcase_fast",
    "simulate_standard_lean",
    "simulate_worstcase_lean",
]

_INF = float("inf")
_SEND = OpKind.SEND
_RECV = OpKind.RECV


def simulate_standard_fast(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> SimulationResult:
    """Fast path of the Figure 2 algorithm (see module docstring)."""
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    o = params.o
    g = params.g
    L = params.L
    G = params.G
    rs_gap = max(o, g) - o  # receive -> send gap (Figure 1's asymmetric rule)
    sdur = send_durations(params)
    sdur_get = sdur.get

    ctime: dict[int, float] = {}
    last_kind: dict[int, Optional[OpKind]] = {}
    send_q: dict[int, deque] = {}
    recv_h: dict[int, list] = {}
    for p in procs:
        ctime[p] = starts.get(p, 0.0)
        last_kind[p] = None
        send_q[p] = deque()
        recv_h[p] = []
    for m in remote:  # one pass; per-source order is the remote order
        send_q[m.src].append(m)

    timeline = StepTimeline(
        params=params, start_times={p: ctime[p] for p in procs}
    )
    events = timeline.events
    events_append = events.append

    while True:
        # One scan finds the senders and their minimum clock together.
        senders = []
        min_ct = _INF
        for p in procs:
            if send_q[p]:
                senders.append(p)
                c = ctime[p]
                if c < min_ct:
                    min_ct = c
        if not senders:
            break
        if len(senders) == 1:
            # Sole sender: singleton tie set in the reference (no RNG
            # draw) and no other sender to bound the batched segment.
            proc = senders[0]
            other_min = _INF
        else:
            tied = [p for p in senders if ctime[p] == min_ct]
            proc = tied[0] if len(tied) == 1 else int(rng.choice(tied))

            # Strict bound for the batched segment: while this processor's
            # clock stays below every other sender's, the reference would
            # re-pick it with a singleton tie set (no RNG) — so we may keep
            # going without rescanning.  Other senders' clocks cannot change
            # meanwhile (only `proc` operates; sends only grow *receive*
            # heaps).
            other_min = _INF
            for p in senders:
                if p != proc and ctime[p] < other_min:
                    other_min = ctime[p]

        sq = send_q[proc]
        rh = recv_h[proc]
        ct = ctime[proc]
        lk = last_kind[proc]
        while True:
            if rh:
                arrival = rh[0][0]
                start_recv = max(arrival, ct if lk is None else ct + g)
            else:
                start_recv = _INF
            start_send = (
                ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
            )

            if start_send < start_recv:
                msg = sq.popleft()
                size = msg.size
                duration = sdur_get(size)
                if duration is None:
                    duration = sdur[size] = o + (size - 1) * G
                events_append(CommEvent(proc, _SEND, start_send, duration, msg))
                ct = start_send + duration
                lk = _SEND
                heappush(recv_h[msg.dst], (ct + L, msg.uid, msg))
            else:
                arrival, _, msg = heappop(rh)
                events_append(
                    CommEvent(proc, _RECV, start_recv, o, msg, arrival=arrival)
                )
                ct = start_recv + o
                lk = _RECV
            if not sq or not ct < other_min:
                break
        ctime[proc] = ct
        last_kind[proc] = lk

    # Drain: every processor performs its remaining receives.
    for p in procs:
        rh = recv_h[p]
        if not rh:
            continue
        ct = ctime[p]
        lk = last_kind[p]
        while rh:
            arrival, _, msg = heappop(rh)
            start = max(arrival, ct if lk is None else ct + g)
            events_append(CommEvent(p, _RECV, start, o, msg, arrival=arrival))
            ct = start + o
            lk = _RECV
        ctime[p] = ct
        last_kind[p] = lk

    ctimes = {p: ctime[p] for p in procs}
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.comm_steps.standard")
        tracer.emit_comm_step(timeline, ctimes, algo="standard")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)


def simulate_standard_lean(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> tuple[dict[int, float], dict[int, float]]:
    """The Figure 2 algorithm without event materialisation.

    Identical schedule, clocks and RNG consumption as
    :func:`simulate_standard_fast`, but instead of building the
    :class:`CommEvent` stream it folds each processor's engaged time on
    the fly — the same per-processor left-fold over the same durations
    in the same order as ``StepTimeline.busy_times()`` over the events,
    so both outputs are bit-equal to the full simulation's.  Returns
    ``(ctimes, busy)``.

    For the untraced batch path only: no timeline exists to trace, so
    callers must not use this while the observability tracer is enabled.
    """
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    o = params.o
    g = params.g
    L = params.L
    G = params.G
    rs_gap = max(o, g) - o
    sdur = send_durations(params)
    sdur_get = sdur.get

    ctime: dict[int, float] = {}
    busy: dict[int, float] = {}
    last_kind: dict[int, Optional[OpKind]] = {}
    send_q: dict[int, deque] = {}
    recv_h: dict[int, list] = {}
    for p in procs:
        ctime[p] = starts.get(p, 0.0)
        busy[p] = 0.0
        last_kind[p] = None
        send_q[p] = deque()
        recv_h[p] = []
    for m in remote:
        send_q[m.src].append(m)

    while True:
        senders = []
        min_ct = _INF
        for p in procs:
            if send_q[p]:
                senders.append(p)
                c = ctime[p]
                if c < min_ct:
                    min_ct = c
        if not senders:
            break
        if len(senders) == 1:
            proc = senders[0]
            other_min = _INF
        else:
            tied = [p for p in senders if ctime[p] == min_ct]
            proc = tied[0] if len(tied) == 1 else int(rng.choice(tied))
            other_min = _INF
            for p in senders:
                if p != proc and ctime[p] < other_min:
                    other_min = ctime[p]

        sq = send_q[proc]
        rh = recv_h[proc]
        ct = ctime[proc]
        lk = last_kind[proc]
        bz = busy[proc]
        while True:
            if rh:
                arrival = rh[0][0]
                start_recv = max(arrival, ct if lk is None else ct + g)
            else:
                start_recv = _INF
            start_send = (
                ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
            )

            if start_send < start_recv:
                msg = sq.popleft()
                size = msg.size
                duration = sdur_get(size)
                if duration is None:
                    duration = sdur[size] = o + (size - 1) * G
                bz += duration
                ct = start_send + duration
                lk = _SEND
                heappush(recv_h[msg.dst], (ct + L, msg.uid, msg))
            else:
                arrival, _, msg = heappop(rh)
                bz += o
                ct = start_recv + o
                lk = _RECV
            if not sq or not ct < other_min:
                break
        ctime[proc] = ct
        last_kind[proc] = lk
        busy[proc] = bz

    for p in procs:
        rh = recv_h[p]
        if not rh:
            continue
        ct = ctime[p]
        lk = last_kind[p]
        bz = busy[p]
        while rh:
            arrival, _, msg = heappop(rh)
            start = max(arrival, ct if lk is None else ct + g)
            bz += o
            ct = start + o
            lk = _RECV
        ctime[p] = ct
        last_kind[p] = lk
        busy[p] = bz

    return ctime, busy


def simulate_worstcase_fast(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> SimulationResult:
    """Fast path of the overestimation algorithm (round structure kept)."""
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    o = params.o
    g = params.g
    L = params.L
    G = params.G
    rs_gap = max(o, g) - o
    sdur = send_durations(params)
    sdur_get = sdur.get

    ctime: dict[int, float] = {}
    last_kind: dict[int, Optional[OpKind]] = {}
    send_q: dict[int, deque] = {}
    recv_h: dict[int, list] = {}
    expected: dict[int, int] = {}
    for p in procs:
        ctime[p] = starts.get(p, 0.0)
        last_kind[p] = None
        send_q[p] = deque()
        recv_h[p] = []
        expected[p] = 0
    for m in remote:  # one pass; per-source order is the remote order
        send_q[m.src].append(m)
        expected[m.dst] += 1
    remaining = len(remote)

    timeline = StepTimeline(
        params=params, start_times={p: ctime[p] for p in procs}
    )
    events = timeline.events
    events_append = events.append

    def drain_recvs(proc: int) -> None:
        rh = recv_h[proc]
        ct = ctime[proc]
        lk = last_kind[proc]
        while rh:
            arrival, _, msg = heappop(rh)
            start = max(arrival, ct if lk is None else ct + g)
            events_append(CommEvent(proc, _RECV, start, o, msg, arrival=arrival))
            ct = start + o
            lk = _RECV
        ctime[proc] = ct
        last_kind[proc] = lk

    while remaining:
        # One scan classifies the round: senders that may transmit
        # (nothing owed, nothing pending) and processors with pending
        # receives, both in ``procs`` order like the reference listcomps.
        ready = []
        receivers = []
        for p in procs:
            if recv_h[p]:
                receivers.append(p)
            elif send_q[p] and expected[p] == 0:
                ready.append(p)
        if not ready:
            if receivers:
                for p in receivers:
                    drain_recvs(p)
                continue
            blocked = [p for p in procs if send_q[p]]
            victim = blocked[0] if len(blocked) == 1 else int(rng.choice(blocked))
            # Random forced transmission breaks the cycle (one send).
            msg = send_q[victim].popleft()
            lk = last_kind[victim]
            ct = ctime[victim]
            start = ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
            size = msg.size
            duration = sdur_get(size)
            if duration is None:
                duration = sdur[size] = o + (size - 1) * G
            events_append(CommEvent(victim, _SEND, start, duration, msg))
            end = start + duration
            ctime[victim] = end
            last_kind[victim] = _SEND
            heappush(recv_h[msg.dst], (end + L, msg.uid, msg))
            expected[msg.dst] -= 1
            remaining -= 1
            continue

        for p in ready:
            sq = send_q[p]
            ct = ctime[p]
            lk = last_kind[p]
            remaining -= len(sq)
            while sq:
                msg = sq.popleft()
                start = (
                    ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
                )
                size = msg.size
                duration = sdur_get(size)
                if duration is None:
                    duration = sdur[size] = o + (size - 1) * G
                events_append(CommEvent(p, _SEND, start, duration, msg))
                ct = start + duration
                lk = _SEND
                heappush(recv_h[msg.dst], (ct + L, msg.uid, msg))
                expected[msg.dst] -= 1
            ctime[p] = ct
            last_kind[p] = lk
        for p in procs:
            if recv_h[p]:
                drain_recvs(p)

    for p in procs:
        if recv_h[p]:
            drain_recvs(p)

    ctimes = {p: ctime[p] for p in procs}
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("sim.comm_steps.worstcase")
        tracer.emit_comm_step(timeline, ctimes, algo="worstcase")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)


def simulate_worstcase_lean(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]],
    rng: np.random.Generator,
) -> tuple[dict[int, float], dict[int, float]]:
    """The §4.2 overestimation algorithm without event materialisation.

    The :func:`simulate_standard_lean` counterpart for the worst-case
    engine: same schedule, clocks and RNG draws as
    :func:`simulate_worstcase_fast`, engaged time folded on the fly.
    Returns ``(ctimes, busy)``; untraced batch path only.
    """
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    o = params.o
    g = params.g
    L = params.L
    G = params.G
    rs_gap = max(o, g) - o
    sdur = send_durations(params)
    sdur_get = sdur.get

    ctime: dict[int, float] = {}
    busy: dict[int, float] = {}
    last_kind: dict[int, Optional[OpKind]] = {}
    send_q: dict[int, deque] = {}
    recv_h: dict[int, list] = {}
    expected: dict[int, int] = {}
    for p in procs:
        ctime[p] = starts.get(p, 0.0)
        busy[p] = 0.0
        last_kind[p] = None
        send_q[p] = deque()
        recv_h[p] = []
        expected[p] = 0
    for m in remote:
        send_q[m.src].append(m)
        expected[m.dst] += 1
    remaining = len(remote)

    def drain_recvs(proc: int) -> None:
        rh = recv_h[proc]
        ct = ctime[proc]
        lk = last_kind[proc]
        bz = busy[proc]
        while rh:
            arrival, _, msg = heappop(rh)
            start = max(arrival, ct if lk is None else ct + g)
            bz += o
            ct = start + o
            lk = _RECV
        ctime[proc] = ct
        last_kind[proc] = lk
        busy[proc] = bz

    while remaining:
        ready = []
        receivers = []
        for p in procs:
            if recv_h[p]:
                receivers.append(p)
            elif send_q[p] and expected[p] == 0:
                ready.append(p)
        if not ready:
            if receivers:
                for p in receivers:
                    drain_recvs(p)
                continue
            blocked = [p for p in procs if send_q[p]]
            victim = blocked[0] if len(blocked) == 1 else int(rng.choice(blocked))
            msg = send_q[victim].popleft()
            lk = last_kind[victim]
            ct = ctime[victim]
            start = ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
            size = msg.size
            duration = sdur_get(size)
            if duration is None:
                duration = sdur[size] = o + (size - 1) * G
            busy[victim] += duration
            end = start + duration
            ctime[victim] = end
            last_kind[victim] = _SEND
            heappush(recv_h[msg.dst], (end + L, msg.uid, msg))
            expected[msg.dst] -= 1
            remaining -= 1
            continue

        for p in ready:
            sq = send_q[p]
            ct = ctime[p]
            lk = last_kind[p]
            bz = busy[p]
            remaining -= len(sq)
            while sq:
                msg = sq.popleft()
                start = (
                    ct if lk is None else (ct + rs_gap if lk is _RECV else ct + g)
                )
                size = msg.size
                duration = sdur_get(size)
                if duration is None:
                    duration = sdur[size] = o + (size - 1) * G
                bz += duration
                ct = start + duration
                lk = _SEND
                heappush(recv_h[msg.dst], (ct + L, msg.uid, msg))
                expected[msg.dst] -= 1
            ctime[p] = ct
            last_kind[p] = lk
            busy[p] = bz
        for p in procs:
            if recv_h[p]:
                drain_recvs(p)

    for p in procs:
        if recv_h[p]:
            drain_recvs(p)

    return ctime, busy

"""Fingerprint-keyed memoisation of the pure cost functions.

Two caches, both keyed by canonical machine identity
(:mod:`repro.core.fingerprint`):

* **Basic-op costs.**  ``cost(op, b)`` of every deterministic cost model
  is a pure function of ``(op, b, model fingerprint)``.
  :func:`memoize` wraps a model in a :class:`MemoizedCostModel` sharing
  one process-wide dict per fingerprint; a model that cannot be
  fingerprinted (``cost_model_fingerprint(...) is None``, e.g. a
  host-timed ``MeasuredCostModel``) is returned unwrapped — *bypass*,
  never a wrong hit.
* **LogGP send durations.**  ``o + (size-1)*G`` per message size, keyed
  by the exact ``(L, o, g, G)`` float tuple (value-identity — stronger
  than any hash).  Receive duration is the constant ``o`` and needs no
  table.

Invalidation is structural, not temporal: a
:class:`~repro.machine.perturbed.ScaledCostModel` folds its factors into
its fingerprint and a perturbed ``params.with_(...)`` changes the float
tuple, so UQ replicates sharing one worker process each hit their own
bucket (regression-tested in ``tests/test_kernel_memo.py``).  Buckets
are capped to keep long Monte Carlo runs bounded.

The module also keeps the sweep executor's *point-cost* observations: a
calibrated seconds-per-weight rate (EWMA over measured evaluations)
that turns a GE configuration into a wall-time estimate.  This is the
paper's own idea pointed at ourselves — predict the cost of a
simulation before deciding how to schedule it.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.fingerprint import cost_model_fingerprint
from ..core.loggp import LogGPParameters

__all__ = [
    "MemoizedCostModel",
    "memoize",
    "send_durations",
    "clear_caches",
    "point_weight",
    "observe_point_cost",
    "estimate_point_cost",
    "clear_cost_observations",
]

#: per-fingerprint (op, b) -> us buckets
_COST_CACHES: dict[str, dict[tuple[str, int], float]] = {}
#: per-(L, o, g, G) size -> send-duration tables
_SEND_TABLES: dict[tuple[float, float, float, float], dict[int, float]] = {}

#: bucket-count cap: a 10k-replicate UQ run must not grow memory forever
_MAX_BUCKETS = 512


class MemoizedCostModel:
    """A cost model sharing a process-wide memo for its fingerprint.

    Transparent: ``cost`` returns exactly what ``base.cost`` returns
    (the cached value *is* a ``base.cost`` return value), so wrapping is
    bit-identical by construction.  Invalid inputs take the uncached
    path and raise exactly like the base model.
    """

    __slots__ = ("base", "_cache")

    def __init__(self, base, cache: dict):
        self.base = base
        self._cache = cache

    def cost(self, op: str, b: int) -> float:
        """Memoised ``base.cost(op, b)``."""
        key = (op, b)
        cache = self._cache
        try:
            return cache[key]
        except KeyError:
            value = self.base.cost(op, b)
            cache[key] = value
            return value

    def fingerprint(self) -> Optional[str]:
        """Delegates: the wrapper has the identity of its base."""
        return cost_model_fingerprint(self.base)


def memoize(cost_model):
    """The memoised view of ``cost_model`` — or the model itself.

    Returns the input unchanged when it is already memoised or when it
    has no fingerprint (nothing to key the shared cache on: caching
    would risk stale hits across instances, so the kernel declines).
    """
    if isinstance(cost_model, MemoizedCostModel):
        return cost_model
    fp = cost_model_fingerprint(cost_model)
    if fp is None:
        return cost_model
    cache = _COST_CACHES.get(fp)
    if cache is None:
        if len(_COST_CACHES) >= _MAX_BUCKETS:
            _COST_CACHES.clear()
        cache = _COST_CACHES[fp] = {}
    return MemoizedCostModel(cost_model, cache)


def send_durations(params: LogGPParameters) -> dict[int, float]:
    """The shared ``size -> send_duration`` table of one machine.

    Callers fill it lazily with ``params.send_duration(size)`` values;
    the key is the exact parameter tuple, so any perturbation gets a
    fresh table.
    """
    key = (params.L, params.o, params.g, params.G)
    table = _SEND_TABLES.get(key)
    if table is None:
        if len(_SEND_TABLES) >= _MAX_BUCKETS:
            _SEND_TABLES.clear()
        table = _SEND_TABLES[key] = {}
    return table


#: EWMA of observed seconds per weight unit (None until first observation)
_POINT_RATE: Optional[float] = None
_POINT_OBSERVATIONS = 0
_RATE_LOCK = threading.Lock()
#: smoothing factor: heavy enough to converge in a few points, light
#: enough that one noisy measurement (GC pause, cold cache) fades fast
_EWMA_ALPHA = 0.3


def point_weight(n: int, b: int, with_measured: bool = True) -> float:
    """Relative cost weight of one GE sweep point.

    The simulators' work is dominated by per-message scheduling over the
    ``m = n/b`` block grid: messages per step scale with ``m``-ish
    fan-outs over ``O(m)`` steps with ``O(m^2)`` block updates, so a
    cubic-plus-quadratic polynomial in ``m`` tracks measured wall times
    well across the Figure 7 grid.  The emulated "measured" run roughly
    doubles a point (profiled: emulator ≈ prediction cost).  Only
    *relative* accuracy matters — the calibrated rate absorbs the unit.
    """
    m = max(1.0, n / b)
    w = m * m * (m + 8.0)
    return w * 2.0 if with_measured else w


def observe_point_cost(n: int, b: int, with_measured: bool, seconds: float) -> None:
    """Fold one measured point evaluation into the calibrated rate."""
    if seconds <= 0.0:
        return
    rate = seconds / point_weight(n, b, with_measured)
    global _POINT_RATE, _POINT_OBSERVATIONS
    with _RATE_LOCK:
        if _POINT_RATE is None:
            _POINT_RATE = rate
        else:
            _POINT_RATE = _POINT_RATE + _EWMA_ALPHA * (rate - _POINT_RATE)
        _POINT_OBSERVATIONS += 1


def estimate_point_cost(n: int, b: int, with_measured: bool = True) -> Optional[float]:
    """Estimated wall seconds of one point; ``None`` before calibration."""
    with _RATE_LOCK:
        rate = _POINT_RATE
    if rate is None:
        return None
    return rate * point_weight(n, b, with_measured)


def cost_observation_count() -> int:
    """How many point evaluations have calibrated the rate."""
    with _RATE_LOCK:
        return _POINT_OBSERVATIONS


def clear_cost_observations() -> None:
    """Forget the calibrated point-cost rate (tests)."""
    global _POINT_RATE, _POINT_OBSERVATIONS
    with _RATE_LOCK:
        _POINT_RATE = None
        _POINT_OBSERVATIONS = 0


def clear_caches() -> None:
    """Drop every memo bucket (tests and long-lived processes)."""
    _COST_CACHES.clear()
    _SEND_TABLES.clear()
    clear_cost_observations()

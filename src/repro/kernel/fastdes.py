"""Flat-heap causal simulator: the DES cross-check without coroutines.

:func:`repro.core.des_check.simulate_causal` runs one generator coroutine
per processor on :class:`repro.des.Environment`.  Each simulated action
costs several kernel :class:`~repro.des.Event` allocations, callback
lists, and generator suspensions — ~13 µs per event, all interpreter
overhead.  This module replays the *same computation* as a flat state
machine over plain tuples: the event slab.

Equivalence is sequence-exact, not merely value-exact.  The reference
engine orders same-time events by a global creation counter, and the
machine emulator's jittered network draws latencies from one shared RNG
in send-completion order — so any reordering of equal-time pops would
change numeric results.  The fast path therefore allocates its sequence
numbers at exactly the moments the reference engine calls
``Environment._schedule``:

====================  ==================================================
reference event        slab entry (when, seq, kind, ...)
====================  ==================================================
``Initialize(proc)``   ``INIT_PROC`` — run the decision loop once
``Timeout(recv gap)``  ``RECV_START`` — emit the RECV event, start it
``Timeout(recv o)``    ``RECV_END`` — commit clock, count the receive
``Timeout(send dur)``  ``SEND_END`` — commit clock, launch delivery
``Initialize(deliver)````INIT_DELIVER`` — schedule the wire timeout
``Timeout(wire)``      ``DELIVER`` — enqueue arrival, wake the receiver
``wakeup.succeed()``   ``WAKEUP`` — resume a blocked processor
``Timeout(send slot)`` ``SENDSLOT`` — the AnyOf's timeout arm
``AnyOf.succeed()``    ``ANYOF_FIRE`` — resume the send-slot waiter
``Process.succeed()``  *skipped push* — a pure no-op pop; the sequence
                       number is still consumed so heap order and the
                       ``des.events`` total stay identical
====================  ==================================================

Stale wakeups are real in the reference (a message landing between an
``AnyOf`` firing and the processor resuming schedules a wakeup that
resolves into nothing); per-processor wait generation counters replicate
them as explicit no-op pops.

Float discipline: a reference ``Timeout(delta)`` schedules at
``now + delta`` where ``delta = target - now`` — which can differ from
``target`` in the last ulp.  Slab entries therefore carry the *target*
values (``recv_start``, ``last_end``) alongside the reference-exact heap
``when``, exactly as the coroutine keeps them in locals across the wait.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Mapping, Optional

from ..core.events import CommEvent, StepTimeline
from ..core.loggp import LogGPParameters, OpKind
from ..core.message import CommPattern
from ..core.standard_sim import SimulationResult
from ..obs.events import get_tracer
from .memo import send_durations

__all__ = ["simulate_causal_fast"]

_INF = float("inf")
_SEND = OpKind.SEND
_RECV = OpKind.RECV

# slab entry kinds (never compared by heapq: seq is unique)
_INIT_PROC = 0
_RECV_START = 1
_RECV_END = 2
_SEND_END = 3
_INIT_DELIVER = 4
_DELIVER = 5
_WAKEUP = 6
_SENDSLOT = 7
_ANYOF_FIRE = 8

# wait states
_NO_WAIT = 0
_PLAIN = 1   # `yield st.wakeup` — block until any delivery
_ANYOF = 2   # `yield any_of([timeout, wakeup])` — send slot or delivery


def simulate_causal_fast(
    params: LogGPParameters,
    pattern: CommPattern,
    start_times: Optional[Mapping[int, float]] = None,
    latency_of=None,
) -> SimulationResult:
    """Flat-heap replay of :func:`repro.core.des_check.simulate_causal`."""
    if latency_of is None:
        latency_of = lambda _msg: params.L  # noqa: E731 - mirrors reference
    starts = dict(start_times or {})
    remote = pattern.remote_messages()
    local = pattern.local_messages()
    procs = sorted({m.src for m in remote} | {m.dst for m in remote} | set(starts))

    o = params.o
    g = params.g
    G = params.G
    rs_gap = max(o, g) - o
    sdur = send_durations(params)
    sdur_get = sdur.get

    # Per-processor state lives in flat lists indexed by the processor's
    # rank in ``procs`` (list indexing beats dict hashing in the pop loop);
    # heap entries carry the rank.  Ranks never participate in heap
    # comparisons — ``seq`` is unique.
    n_procs = len(procs)
    rank_of = {p: i for i, p in enumerate(procs)}
    expected = [0] * n_procs
    received = [0] * n_procs
    last_kind: list = [None] * n_procs
    last_end = [starts.get(p, 0.0) for p in procs]
    sends = [deque() for _ in range(n_procs)]
    arrived: list = [[] for _ in range(n_procs)]
    wait_state = [_NO_WAIT] * n_procs
    wait_gen = [0] * n_procs
    wakeup_live = [False] * n_procs
    anyof_fired = [False] * n_procs
    for m in remote:  # one pass; per-source order is the remote order
        sends[rank_of[m.src]].append(m)
        expected[rank_of[m.dst]] += 1

    timeline = StepTimeline(
        params=params,
        start_times={p: last_end[i] for i, p in enumerate(procs)},
    )
    events = timeline.events
    events_append = events.append

    # One INIT_PROC per processor at t=0, seqs 0..P-1 — already heap-ordered.
    heap: list[tuple] = [(0.0, i, _INIT_PROC, i) for i in range(n_procs)]
    seq = n_procs

    def decide(pid: int, now: float) -> None:
        """One pass of the processor loop: loop-top to the next yield.

        ``pid`` is the processor's rank in ``procs``.  Every branch of
        the reference coroutine body ends in a yield (or terminates), so
        one resume runs exactly one decision.
        """
        nonlocal seq
        sq = sends[pid]
        if not sq and received[pid] >= expected[pid]:
            seq += 1  # Process completion event: pure no-op pop, skip push
            return
        lk = last_kind[pid]
        le = last_end[pid]
        if sq:
            es = le if lk is None else (le + rs_gap if lk is _RECV else le + g)
            send_start = max(now, es)
        else:
            send_start = _INF
        arr = arrived[pid]
        if arr:
            es = le if lk is None else le + g
            recv_start = max(now, arr[0][0], es)
        else:
            recv_start = _INF

        if arr and recv_start <= send_start:
            arrival, _, msg = heappop(arr)
            if recv_start > now:
                heappush(
                    heap,
                    (
                        now + (recv_start - now),
                        seq,
                        _RECV_START,
                        pid,
                        recv_start,
                        arrival,
                        msg,
                    ),
                )
                seq += 1
            else:
                events_append(
                    CommEvent(procs[pid], _RECV, recv_start, o, msg, arrival=arrival)
                )
                heappush(heap, (now + o, seq, _RECV_END, pid, recv_start + o))
                seq += 1
        elif sq:
            if send_start > now:
                gen = wait_gen[pid] = wait_gen[pid] + 1
                wait_state[pid] = _ANYOF
                anyof_fired[pid] = False
                wakeup_live[pid] = True
                heappush(
                    heap, (now + (send_start - now), seq, _SENDSLOT, pid, gen)
                )
                seq += 1
            else:
                msg = sq.popleft()
                size = msg.size
                duration = sdur_get(size)
                if duration is None:
                    duration = sdur[size] = o + (size - 1) * G
                events_append(
                    CommEvent(procs[pid], _SEND, send_start, duration, msg)
                )
                heappush(
                    heap,
                    (now + duration, seq, _SEND_END, pid, send_start + duration, msg),
                )
                seq += 1
        else:
            wait_gen[pid] += 1
            wait_state[pid] = _PLAIN
            wakeup_live[pid] = True

    while heap:
        item = heappop(heap)
        t = item[0]
        kind = item[2]
        if kind == _RECV_END:
            pid = item[3]
            last_kind[pid] = _RECV
            last_end[pid] = item[4]
            received[pid] += 1
            decide(pid, t)
        elif kind == _SEND_END:
            pid = item[3]
            msg = item[5]
            last_kind[pid] = _SEND
            last_end[pid] = item[4]
            # Wire latency is drawn *before* the delivery process is
            # scheduled and before the next decision — the emulator's
            # shared-RNG draw order depends on this.
            wire = latency_of(msg)
            heappush(heap, (t, seq, _INIT_DELIVER, rank_of[msg.dst], wire, msg))
            seq += 1
            decide(pid, t)
        elif kind == _DELIVER:
            dst = item[3]
            msg = item[4]
            heappush(arrived[dst], (t, msg.uid, msg))
            if wakeup_live[dst]:
                wakeup_live[dst] = False
                heappush(heap, (t, seq, _WAKEUP, dst, wait_gen[dst]))
                seq += 1
            seq += 1  # delivery Process completion: no-op pop, skip push
        elif kind == _INIT_DELIVER:
            heappush(heap, (t + item[4], seq, _DELIVER, item[3], item[5]))
            seq += 1
        elif kind == _RECV_START:
            pid = item[3]
            recv_start = item[4]
            events_append(
                CommEvent(procs[pid], _RECV, recv_start, o, item[6], arrival=item[5])
            )
            heappush(heap, (t + o, seq, _RECV_END, pid, recv_start + o))
            seq += 1
        elif kind == _WAKEUP:
            pid = item[3]
            if item[4] == wait_gen[pid]:
                ws = wait_state[pid]
                if ws == _PLAIN:
                    wait_state[pid] = _NO_WAIT
                    decide(pid, t)
                elif ws == _ANYOF and not anyof_fired[pid]:
                    anyof_fired[pid] = True
                    heappush(heap, (t, seq, _ANYOF_FIRE, pid))
                    seq += 1
            # else: stale wakeup — the reference pops it into a no-op too
        elif kind == _SENDSLOT:
            pid = item[3]
            if (
                item[4] == wait_gen[pid]
                and wait_state[pid] == _ANYOF
                and not anyof_fired[pid]
            ):
                anyof_fired[pid] = True
                heappush(heap, (t, seq, _ANYOF_FIRE, pid))
                seq += 1
            # else: the AnyOf already fired via a wakeup — no-op pop
        elif kind == _ANYOF_FIRE:
            pid = item[3]
            wait_state[pid] = _NO_WAIT
            wakeup_live[pid] = False  # resume clears st.wakeup
            decide(pid, t)
        else:  # _INIT_PROC
            decide(item[3], t)

    ctimes = {p: last_end[i] for i, p in enumerate(procs)}
    tracer = get_tracer()
    if tracer.enabled:
        # Every reference schedule maps to one consumed seq, so the final
        # counter equals the engine's processed-event total.
        tracer.count("des.events", seq)
        tracer.count("sim.comm_steps.causal")
        tracer.emit_comm_step(timeline, ctimes, algo="causal")
    return SimulationResult(timeline=timeline, ctimes=ctimes, skipped_local=local)

"""Structure-of-arrays batch simulation: many sweep points per step.

The scalar fast kernel (:mod:`repro.kernel.fastsim`) removed per-operation
interpreter overhead *within* one simulation; this module removes the
overhead *between* simulations.  A sweep evaluates many lanes — every
(point, engine) pair of a grid — over the same compiled program
structure, and the per-step LogGP recurrences of those lanes are
independent of each other.  So the batch simulator walks the program
**step-major**: at each step it advances every lane at once,

* pricing the computation phase for all lanes in one vectorized pass
  over a shared :class:`ProgramPlan` (the trace compiled once into flat
  numpy index arrays, instead of re-traversed per lane per engine), and
* pricing each lane's communication phase with the proven-bit-identical
  scalar step simulators, fed from the plan's precompiled per-step
  message patterns and participant lists.

Bit-identity discipline (enforced by ``tests/test_vector_property.py``
and the differential oracle):

* The scalar reference folds computation costs left to right
  (``total += cost``).  The vectorized fold uses
  ``np.add.accumulate``, which is the identical sequential left-fold
  per lane — *never* ``np.sum``, whose pairwise reduction regroups the
  additions and changes low bits.
* All lane state lives in float64 SoA arrays; values cross back into
  the scalar world through ``.item()`` so every number the caller sees
  is a plain Python float with the exact same bits.
* Each lane owns its tie-break RNG (``default_rng(seed)``, consumed
  only by that lane's communication phases in step order), so the draw
  stream per lane is bit-equal to a standalone scalar run.
* Cost models are assumed non-negative (every shipped model is), which
  makes the unconditional vector add bit-equal to the reference's
  ``if t:``-guarded add (``x + 0.0 == x`` for ``x >= 0.0``).

The batch path is registered behind the existing :func:`fast_path` gate
and steps aside whenever the ambient tracer is enabled — the traced
scalar path stays the single source of the event stream, so PR 6's
bit-exact trace exports are untouched.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from ..core.des_check import simulate_causal
from ..core.loggp import LogGPParameters
from ..core.program_sim import PredictionReport
from ..core.standard_sim import simulate_standard
from ..core.worstcase_sim import simulate_worstcase
from ..trace.program import ProgramTrace
from .fastsim import simulate_standard_lean, simulate_worstcase_lean
from .memo import memoize
from .tracecache import ge_trace

__all__ = [
    "ProgramPlan",
    "compile_plan",
    "ge_plan",
    "clear_plan_cache",
    "simulate_programs_batch",
    "evaluate_ge_points_batch",
]

_SIMULATORS = {
    "standard": simulate_standard,
    "worstcase": simulate_worstcase,
    "causal": simulate_causal,
}

#: event-free step simulators (same clocks/busy/RNG, no CommEvent stream);
#: the batch path is untraced by construction, so nothing needs the events
_LEAN_SIMULATORS = {
    "standard": simulate_standard_lean,
    "worstcase": simulate_worstcase_lean,
}

#: the engines one GE point evaluates (the ``predict_both`` pair)
GE_MODES = ("standard", "worstcase")


class _PlanStep:
    """One program step, compiled: flat comp indices + comm metadata."""

    __slots__ = ("comp", "pattern", "participants")

    def __init__(self, comp, pattern, participants):
        #: ``[(proc, idx_list, idx_array)]`` for procs with non-empty work
        self.comp = comp
        #: the step's :class:`CommPattern` iff it has remote messages
        self.pattern = pattern
        #: sorted processors touched by the remote messages
        self.participants = participants


class ProgramPlan:
    """A :class:`ProgramTrace` compiled for batch evaluation.

    The plan is read-only and shared: one compilation serves every lane
    of every batch over the same trace.  ``op_table`` holds the distinct
    ``(op, b)`` pairs the program prices; each step's work is an index
    array into a per-lane cost vector built from that table, so the
    computation phase becomes one gather + one sequential fold per
    (step, processor) for *all* lanes together.
    """

    __slots__ = ("trace", "num_procs", "op_table", "steps")

    def __init__(self, trace: ProgramTrace):
        self.trace = trace
        self.num_procs = trace.num_procs
        op_index: dict[tuple[str, int], int] = {}
        op_table: list[tuple[str, int]] = []
        steps: list[_PlanStep] = []
        for step in trace.steps:
            comp = []
            for proc, ops in step.work.items():
                if not ops:
                    continue
                idx = []
                for w in ops:
                    key = (w.op, w.b)
                    slot = op_index.get(key)
                    if slot is None:
                        slot = op_index[key] = len(op_table)
                        op_table.append(key)
                    idx.append(slot)
                comp.append((proc, idx, np.asarray(idx, dtype=np.intp)))
            pattern = step.pattern
            participants: tuple[int, ...] = ()
            if pattern is not None:
                remote = pattern.remote_messages()
                if remote:
                    participants = tuple(
                        sorted({p for m in remote for p in (m.src, m.dst)})
                    )
                else:
                    pattern = None
            else:
                pattern = None
            steps.append(_PlanStep(comp, pattern, participants))
        self.op_table = tuple(op_table)
        self.steps = steps


def compile_plan(trace: ProgramTrace) -> ProgramPlan:
    """Compile ``trace`` for batch evaluation (pure, no caching)."""
    return ProgramPlan(trace)


#: compiled-plan LRU for GE configurations (mirrors the trace cache; the
#: plan pins its trace so the two caches cannot go out of sync)
_PLANS: OrderedDict[tuple[int, int, str, int], ProgramPlan] = OrderedDict()
_PLANS_LOCK = threading.Lock()
_MAX_PLANS = 32


def ge_plan(n: int, b: int, layout_name: str, P: int) -> ProgramPlan:
    """The (shared) compiled plan of one GE configuration.

    Thread-safe: sweep worker threads share one plan per configuration
    the same way they share the GE trace cache.
    """
    key = (n, b, layout_name, P)
    with _PLANS_LOCK:
        plan = _PLANS.get(key)
        if plan is not None:
            _PLANS.move_to_end(key)
            return plan
    trace = ge_trace(n, b, layout_name, P)
    plan = ProgramPlan(trace)
    with _PLANS_LOCK:
        _PLANS[key] = plan
        while len(_PLANS) > _MAX_PLANS:
            _PLANS.popitem(last=False)
    return plan


def clear_plan_cache() -> None:
    """Drop every compiled plan (tests and long-lived processes)."""
    with _PLANS_LOCK:
        _PLANS.clear()


def _lane_cost_table(cost_model, op_table) -> list[float]:
    """Exact per-distinct-op costs of one lane (memoised when possible)."""
    priced = memoize(cost_model)
    return [priced.cost(op, b) for op, b in op_table]


def simulate_programs_batch(
    plan: ProgramPlan,
    machines: Sequence[tuple[LogGPParameters, object]],
    seeds: Sequence[int],
    modes: Sequence[str] = GE_MODES,
    rngs: Optional[Sequence[dict]] = None,
) -> list[dict[str, PredictionReport]]:
    """Advance every (machine, mode) lane through the plan, step-major.

    Parameters
    ----------
    plan:
        The compiled program (shared across lanes).
    machines:
        One ``(params, cost_model)`` per point lane.  All lanes must
        agree on ``params.P`` (they simulate the same trace).
    seeds:
        Tie-break seed per point lane; each (point, mode) sub-lane draws
        from its own ``default_rng(seed)``, exactly like a standalone
        :class:`~repro.core.program_sim.ProgramSimulator` run.
    modes:
        The engines to advance per point (default: the ``predict_both``
        pair).
    rngs:
        Optional pre-seeded generators, one ``{mode: Generator}`` dict
        per point lane (the RNG-stream equivalence tests inject these).

    Returns one ``{mode: PredictionReport}`` dict per point lane, each
    report bit-identical to the corresponding scalar simulation.
    """
    n_pts = len(machines)
    if n_pts != len(seeds):
        raise ValueError(f"{n_pts} machines but {len(seeds)} seeds")
    for mode in modes:
        if mode not in _SIMULATORS:
            raise ValueError(f"unknown mode {mode!r}")
    P = plan.num_procs

    # SoA lane state: one (P, n_pts) array per mode for the diverging
    # clocks, one shared comp array (computation phases are engine-
    # independent: same trace, same cost model, same fold).
    cost_lists = [_lane_cost_table(cm, plan.op_table) for _, cm in machines]
    C = (
        np.array(cost_lists, dtype=np.float64).T
        if plan.op_table
        else np.zeros((0, n_pts), dtype=np.float64)
    )
    comp = np.zeros((P, n_pts), dtype=np.float64)
    clocks = {mode: np.zeros((P, n_pts), dtype=np.float64) for mode in modes}
    comm_busy = {mode: np.zeros((P, n_pts), dtype=np.float64) for mode in modes}
    lane_rngs = [
        {mode: rngs[i][mode] for mode in modes}
        if rngs is not None
        else {mode: np.random.default_rng(seeds[i]) for mode in modes}
        for i in range(n_pts)
    ]

    single = n_pts == 1
    table0 = cost_lists[0] if single and cost_lists else ()

    for pstep in plan.steps:
        # -- computation phase: one fold per (step, proc), all lanes ----
        for proc, idx_list, idx_arr in pstep.comp:
            if single:
                # width-1 specialisation: the same left-fold in plain
                # Python floats (bit-equal adds, no array overhead)
                t = 0.0
                for j in idx_list:
                    t += table0[j]
                comp[proc, 0] += t
                for mode in modes:
                    clocks[mode][proc, 0] += t
            else:
                seq = C[idx_arr]  # (k, n_pts)
                if len(idx_list) == 1:
                    t = seq[0]
                else:
                    # sequential left-fold per lane — NOT np.sum (pairwise)
                    t = np.add.accumulate(seq, axis=0)[-1]
                comp[proc] += t
                for mode in modes:
                    clocks[mode][proc] += t

        # -- communication phase: scalar proven-identical sims per lane --
        if pstep.pattern is None:
            continue
        participants = pstep.participants
        for mode in modes:
            lean = _LEAN_SIMULATORS.get(mode)
            simulate = _SIMULATORS[mode]
            cl = clocks[mode]
            cb = comm_busy[mode]
            for i in range(n_pts):
                starts = {p: cl[p, i].item() for p in participants}
                if lean is not None:
                    ctimes, busy = lean(
                        machines[i][0], pstep.pattern,
                        start_times=starts, rng=lane_rngs[i][mode],
                    )
                else:
                    result = simulate(
                        machines[i][0], pstep.pattern,
                        start_times=starts, rng=lane_rngs[i][mode],
                    )
                    busy = result.timeline.busy_times()
                    ctimes = result.ctimes
                for p in participants:
                    cb[p, i] += busy.get(p, 0.0)
                    cl[p, i] = ctimes.get(p, cl[p, i].item())

    meta = dict(plan.trace.meta)
    out: list[dict[str, PredictionReport]] = []
    for i in range(n_pts):
        reports = {}
        for mode in modes:
            cl = clocks[mode]
            reports[mode] = PredictionReport(
                total_us=max(
                    (cl[p, i].item() for p in range(P)), default=0.0
                ),
                per_proc_comp_us={p: comp[p, i].item() for p in range(P)},
                per_proc_total_us={p: cl[p, i].item() for p in range(P)},
                per_proc_comm_busy_us={
                    p: comm_busy[mode][p, i].item() for p in range(P)
                },
                steps=[],
                meta=dict(meta),
            )
        out.append(reports)
    return out


def evaluate_ge_points_batch(
    points,
    params: LogGPParameters,
    cost_model,
    uq=None,
) -> list[dict]:
    """Batch twin of :func:`repro.core.predictor.summarize_ge_point`.

    ``points`` is a sequence of :class:`repro.sweep.SweepPoint`-shaped
    objects (``n``, ``b``, ``layout``, ``seed``, ``with_measured``).
    Points are grouped by configuration; each group's prediction lanes
    advance together over one compiled plan, then the (inherently
    sequential, stateful) machine emulator prices the ``with_measured``
    points one by one — through exactly the code path the scalar
    pipeline uses, so every flat summary dict is bit-identical to its
    ``summarize_ge_point`` / ``summarize_uq_point`` counterpart.

    Returns the flat summary dicts in input order.
    """
    from ..core.predictor import _flatten_ge_row, _measured_report, _uq_machine, GERow

    points = list(points)
    groups: OrderedDict[tuple[int, int, str], list[int]] = OrderedDict()
    for pos, point in enumerate(points):
        groups.setdefault((point.n, point.b, point.layout), []).append(pos)

    out: list[Optional[dict]] = [None] * len(points)
    uq_active = uq is not None and not uq.is_identity()
    for (n, b, layout), positions in groups.items():
        plan = ge_plan(n, b, layout, params.P)
        machines = []
        emulators = []
        for pos in positions:
            seed = points[pos].seed
            if uq_active:
                p_params, p_cost, emulator = _uq_machine(
                    params, cost_model, uq, seed,
                    with_measured=points[pos].with_measured,
                )
            else:
                p_params, p_cost, emulator = params, cost_model, None
            machines.append((p_params, p_cost))
            emulators.append(emulator)
        seeds = [points[pos].seed for pos in positions]
        predictions = simulate_programs_batch(plan, machines, seeds)
        for lane, pos in enumerate(positions):
            point = points[pos]
            measured = None
            if point.with_measured:
                measured = _measured_report(
                    plan.trace, machines[lane][0], machines[lane][1],
                    point.seed, emulator=emulators[lane],
                )
            row = GERow(
                n=n, b=b, layout=layout,
                pred_standard=predictions[lane]["standard"],
                pred_worstcase=predictions[lane]["worstcase"],
                measured=measured,
            )
            out[pos] = _flatten_ge_row(row, point.seed)
    return out  # type: ignore[return-value]

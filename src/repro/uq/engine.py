"""The Monte Carlo UQ engine: replicated sweeps plus OAT sensitivity.

:func:`run_uq` is the uncertainty analogue of
:func:`repro.sweep.run_sweep`: it expands a (n, block sizes, layouts)
study into ``replicates`` seeded machine perturbations per point, runs
the resulting grid through the parallel sweep runner (worker pools,
chunking, store resume and digests all come for free — a replicate *is*
a grid point), and reduces the ensemble to per-point uncertainty
summaries.

:func:`oat_sensitivity` is the deterministic companion study: a
one-at-a-time ±step on each LogGP parameter at each block size, ranking
which parameter the predicted time is most elastic to (reusing
:mod:`repro.analysis.sensitivity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..analysis.sensitivity import parameter_elasticities
from ..apps.gauss import GEConfig, build_ge_trace
from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters
from ..core.predictor import RunningTimePredictor
from ..experiments import PointSummary
from ..layouts import LAYOUTS
from ..sweep import SweepResult, expand_grid, run_sweep
from .reduce import (
    METRIC_FIELDS,
    UQPointSummary,
    reduce_replicates,
    summary_digest,
)
from .sampler import replicate_seeds
from .spec import UQSpec

__all__ = ["UQResult", "run_uq", "oat_sensitivity"]

# the reduction hardcodes the PointSummary metric names to stay
# import-light; fail loudly here if the dataclass ever drifts
_POINT_FIELDS = set(PointSummary.__dataclass_fields__)
assert set(METRIC_FIELDS) <= _POINT_FIELDS, (
    "repro.uq.reduce.METRIC_FIELDS is out of sync with PointSummary: "
    f"{set(METRIC_FIELDS) - _POINT_FIELDS}"
)


@dataclass
class UQResult:
    """A completed Monte Carlo study.

    ``sweep`` is the underlying replicate-level sweep result (grid order:
    replicates of one point are adjacent); ``summaries`` the reduced
    per-point uncertainty summaries in point order.
    """

    spec: UQSpec
    replicates: int
    ci: float
    base_seed: int
    sweep: SweepResult
    summaries: List[UQPointSummary] = field(default_factory=list)

    def replicate_digest(self) -> str:
        """SHA-256 over the replicate-level rows.

        For a deterministic (``sigma=0``) spec the replicate grid
        collapses onto the base seed, so this digest equals the plain
        ``repro sweep`` ``results_sha256`` bit for bit — the acceptance
        anchor of the UQ test harness.
        """
        return self.sweep.digest()

    def summary_digest(self) -> str:
        """SHA-256 over the reduced summaries (worker-equivalence gate)."""
        return summary_digest(self.summaries)

    def to_rows(self) -> list[dict]:
        """JSON-ready summary documents in point order."""
        return [s.to_dict() for s in self.summaries]


def run_uq(
    ns: Union[int, Sequence[int]],
    block_sizes: Sequence[int],
    layouts: Sequence[str],
    params: LogGPParameters,
    cost_model: CostModel,
    *,
    spec: Optional[UQSpec] = None,
    replicates: int = 32,
    ci: float = 0.95,
    base_seed: int = 0,
    with_measured: bool = True,
    workers: Optional[int] = 1,
    executor: Optional[str] = None,
    store=None,
    resume: bool = True,
    chunk_size: Optional[int] = None,
    progress=None,
    mp_context: Optional[str] = None,
    trace_shard_dir=None,
) -> UQResult:
    """Monte Carlo uncertainty study of a GE sweep.

    Each replicate derives its own seed from ``base_seed``
    (:func:`repro.uq.sampler.replicate_seeds`); the seed fully determines
    the perturbed machine and the emulated network's draws, so the study
    is reproducible across worker counts and resumable through an
    experiment store.  A deterministic ``spec`` maps every replicate to
    the base seed, and the grid's duplicate-dropping collapses the
    ensemble to exactly the deterministic sweep.

    See :func:`repro.sweep.run_sweep` for the execution parameters.
    """
    if spec is None:
        spec = UQSpec()
    if not 0.0 < ci < 1.0:
        raise ValueError(f"ci must be in (0, 1), got {ci}")
    seeds = replicate_seeds(base_seed, replicates, spec.is_deterministic())
    grid = expand_grid(
        ns, block_sizes, layouts, seeds=seeds, with_measured=with_measured
    )
    result = run_sweep(
        grid, params, cost_model,
        workers=workers, executor=executor, store=store, resume=resume,
        chunk_size=chunk_size, progress=progress,
        mp_context=mp_context, uq=spec, trace_shard_dir=trace_shard_dir,
    )
    summaries = reduce_replicates(result.points, result.summaries, ci=ci)
    return UQResult(
        spec=spec,
        replicates=replicates,
        ci=ci,
        base_seed=base_seed,
        sweep=result,
        summaries=summaries,
    )


def oat_sensitivity(
    n: int,
    block_sizes: Sequence[int],
    layout_name: str,
    params: LogGPParameters,
    cost_model: CostModel,
    rel_step: float = 0.05,
    mode: str = "standard",
) -> list[dict]:
    """One-at-a-time LogGP sensitivity at each block size.

    For each ``b``, perturbs each of ``L, o, g, G`` by ``±rel_step`` and
    reports the elasticity of the predicted running time plus which
    parameter dominates — the designer-facing ranking of the UQ report.
    Deterministic (no sampling), so it complements the Monte Carlo bands.
    """
    if layout_name not in LAYOUTS:
        raise ValueError(f"unknown layout {layout_name!r}; known: {sorted(LAYOUTS)}")
    out = []
    for b in block_sizes:
        if n % b:
            raise ValueError(f"block size {b} does not divide n={n}")
        layout = LAYOUTS[layout_name](n // b, params.P)
        trace = build_ge_trace(GEConfig(n=n, b=b, layout=layout))

        def predict(p: LogGPParameters, _trace=trace) -> float:
            return RunningTimePredictor(p, cost_model).predict(_trace, mode).total_us

        res = parameter_elasticities(predict, params, rel_step=rel_step)
        out.append(
            {
                "b": b,
                "layout": layout_name,
                "base_us": res.base_us,
                "elasticity": dict(res.elasticity),
                "dominant": res.dominant(),
            }
        )
    return out

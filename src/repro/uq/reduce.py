"""Replicate reduction: Monte Carlo ensembles → per-point uncertainty summaries.

The engine runs every replicate as an ordinary sweep grid point; this
module folds the replicate-level :class:`repro.experiments.PointSummary`
rows back into one :class:`UQPointSummary` per (n, b, layout) — mean,
sample std, a percentile confidence interval and the min/max envelope for
every reported metric.

All statistics are computed in pure Python with a fixed accumulation
order (grid order), so a reduction is a deterministic function of the
replicate values: the same ensemble gives the same summary on every
platform and worker count, which is what the summary-digest gates in CI
rely on.  Summaries survive JSON serialise→deserialise bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

__all__ = ["METRIC_FIELDS", "UQPointSummary", "reduce_replicates", "summary_digest"]

#: the float metrics of :class:`repro.experiments.PointSummary`, in report
#: order (kept in lock-step with that dataclass; the engine asserts so)
METRIC_FIELDS = (
    "pred_standard_total",
    "pred_standard_comp",
    "pred_standard_comm",
    "pred_worstcase_total",
    "pred_worstcase_comm",
    "measured_total",
    "measured_total_wo_cache",
    "measured_comp",
    "measured_comm",
)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted values (numpy 'linear')."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _metric_stats(values: Sequence[float], ci: float) -> dict:
    """``{mean, std, ci_lo, ci_hi, min, max}`` of one metric's replicates."""
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    else:
        std = 0.0
    ordered = sorted(values)
    alpha = (1.0 - ci) / 2.0
    return {
        "mean": mean,
        "std": std,
        "ci_lo": _quantile(ordered, alpha),
        "ci_hi": _quantile(ordered, 1.0 - alpha),
        "min": ordered[0],
        "max": ordered[-1],
    }


@dataclass(frozen=True)
class UQPointSummary:
    """Uncertainty summary of one (n, b, layout) point.

    ``metrics`` maps each :data:`METRIC_FIELDS` name to its statistics
    dict, or to ``None`` for metrics absent from the run (measured
    metrics of a ``--no-measured`` study).
    """

    n: int
    b: int
    layout: str
    replicates: int
    ci: float
    metrics: Mapping[str, Optional[dict]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if not 0.0 < self.ci < 1.0:
            raise ValueError(f"ci must be in (0, 1), got {self.ci}")

    def stat(self, metric: str, key: str) -> float:
        """One statistic, e.g. ``stat('pred_standard_total', 'ci_hi')``."""
        entry = self.metrics.get(metric)
        if entry is None:
            raise KeyError(f"metric {metric!r} absent from this summary")
        return entry[key]

    def ci_width(self, metric: str = "pred_standard_total") -> float:
        """Width of the confidence interval of one metric (µs)."""
        return self.stat(metric, "ci_hi") - self.stat(metric, "ci_lo")

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        return {
            "n": self.n,
            "b": self.b,
            "layout": self.layout,
            "replicates": self.replicates,
            "ci": self.ci,
            "metrics": {
                name: (None if stats is None else dict(stats))
                for name, stats in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "UQPointSummary":
        known = {"n", "b", "layout", "replicates", "ci", "metrics"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown UQPointSummary keys: {sorted(unknown)}")
        return cls(**dict(doc))


def reduce_replicates(
    points: Sequence, summaries: Sequence, ci: float = 0.95
) -> List[UQPointSummary]:
    """Group replicate rows by (n, b, layout) and summarise each group.

    ``points``/``summaries`` are the parallel grid-order sequences of a
    :class:`repro.sweep.SweepResult`; replicates of one configuration
    differ only in their seed.  Groups keep first-occurrence order, and
    replicate values are accumulated in grid order, so the reduction is
    bit-deterministic.  A metric whose value is ``None`` in *any*
    replicate (no measured run) reduces to ``None``.
    """
    if len(points) != len(summaries):
        raise ValueError(
            f"{len(points)} points but {len(summaries)} summaries"
        )
    if not 0.0 < ci < 1.0:
        raise ValueError(f"ci must be in (0, 1), got {ci}")
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for point, summary in zip(points, summaries):
        key = (point.n, point.b, point.layout)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(summary)
    out: List[UQPointSummary] = []
    for key in order:
        rows = groups[key]
        n, b, layout = key
        metrics: dict[str, Optional[dict]] = {}
        for name in METRIC_FIELDS:
            values = [getattr(row, name) for row in rows]
            if any(v is None for v in values):
                metrics[name] = None
            else:
                metrics[name] = _metric_stats(values, ci)
        out.append(
            UQPointSummary(
                n=n, b=b, layout=layout,
                replicates=len(rows), ci=ci, metrics=metrics,
            )
        )
    return out


def summary_digest(summaries: Sequence[UQPointSummary]) -> str:
    """SHA-256 over the canonical summary documents.

    Two UQ runs agree on this digest iff they agree on every statistic of
    every point — the 1-worker vs N-worker equivalence gate in CI.
    """
    payload = json.dumps([s.to_dict() for s in summaries], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()

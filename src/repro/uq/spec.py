"""The parameter-distribution spec: *what* the UQ engine perturbs.

A :class:`UQSpec` describes one uncertainty model over the machine:
relative log-normal noise on the LogGP network parameters (globally or
per parameter), relative noise on the per-op block timings, and optional
overrides of the emulated network's jitter/straggler knobs.  It is a
frozen, picklable value object with an exact JSON round-trip — the same
spec document lands in run manifests, experiment-store fingerprints and
golden test files, and ``from_dict(to_dict(s)) == s`` bit for bit.

Two predicates drive the engine's determinism guarantees:

* :meth:`UQSpec.is_deterministic` — no sampled noise at all, so every
  replicate of a point is the same evaluation and the ensemble collapses
  to the plain deterministic sweep;
* :meth:`UQSpec.is_identity` — deterministic *and* no network-knob
  overrides, so evaluation can take the exact
  :func:`repro.core.predictor.summarize_ge_point` code path (the
  bit-for-bit anchor of the test harness).

:class:`EmpiricalSpec` is the data-driven sibling: instead of sampling
relative log-normal noise around the base machine, it carries an explicit
set of :class:`MachineDraw` values — typically the posterior draws of a
Bayesian calibration (:mod:`repro.calib`) — and each replicate seed
selects one draw deterministically.  A degenerate draw set (every draw
identical) is a deterministic spec, so a posterior collapsed onto the
point fit collapses the UQ ensemble exactly like ``sigma=0`` does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

__all__ = ["LOGGP_PARAMS", "UQSpec", "MachineDraw", "EmpiricalSpec", "spec_from_dict"]

#: the perturbable LogGP network parameters (P is structural, never noised)
LOGGP_PARAMS = ("L", "o", "g", "G")


@dataclass(frozen=True)
class UQSpec:
    """Distribution over machine parameters for one Monte Carlo study.

    Parameters
    ----------
    sigma:
        Relative log-normal sigma applied to each of ``L, o, g, G``
        (mean-preserving, see :func:`repro.uq.sampler.lognormal_multiplier`).
    param_sigma:
        Per-parameter overrides of ``sigma``, e.g. ``{"G": 0.3}`` to
        study bandwidth uncertainty alone (set ``sigma=0`` then).
    op_sigma:
        Relative log-normal sigma on the per-op block-timing costs: each
        replicate draws one multiplier per basic operation.
    jitter_sigma, straggler_prob, straggler_factor:
        Overrides for the emulated network's knobs during measured runs;
        ``None`` keeps the emulator's defaults.  These are fixed settings,
        not sampled quantities — replicate-to-replicate network
        variability comes from the per-replicate seeds.
    """

    sigma: float = 0.0
    param_sigma: Mapping[str, float] = field(default_factory=dict)
    op_sigma: float = 0.0
    jitter_sigma: Optional[float] = None
    straggler_prob: Optional[float] = None
    straggler_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.op_sigma < 0:
            raise ValueError(f"op_sigma must be >= 0, got {self.op_sigma}")
        for name, value in self.param_sigma.items():
            if name not in LOGGP_PARAMS:
                raise ValueError(
                    f"unknown parameter {name!r} in param_sigma; "
                    f"perturbable: {LOGGP_PARAMS}"
                )
            if value < 0:
                raise ValueError(f"param_sigma[{name!r}] must be >= 0, got {value}")
        if self.jitter_sigma is not None and self.jitter_sigma < 0:
            raise ValueError("jitter_sigma override must be >= 0")
        if self.straggler_prob is not None and not (0.0 <= self.straggler_prob <= 1.0):
            raise ValueError("straggler_prob override must be in [0, 1]")
        if self.straggler_factor is not None and self.straggler_factor < 1.0:
            raise ValueError("straggler_factor override must be >= 1")
        # freeze the mapping so the frozen dataclass is deeply immutable
        object.__setattr__(self, "param_sigma", dict(self.param_sigma))

    # -- predicates ----------------------------------------------------------
    def effective_sigma(self, param: str) -> float:
        """The sigma actually applied to one LogGP parameter."""
        if param not in LOGGP_PARAMS:
            raise ValueError(f"unknown parameter {param!r}")
        return float(self.param_sigma.get(param, self.sigma))

    def is_deterministic(self) -> bool:
        """No sampled noise: every replicate evaluates identically.

        Network-knob *overrides* don't break determinism — with one seed
        shared by all replicates they change the value, not its spread.
        """
        return (
            self.sigma == 0
            and self.op_sigma == 0
            and all(v == 0 for v in self.param_sigma.values())
        )

    def is_identity(self) -> bool:
        """Deterministic *and* override-free: the exact plain-sweep path."""
        return (
            self.is_deterministic()
            and self.jitter_sigma is None
            and self.straggler_prob is None
            and self.straggler_factor is None
        )

    def network_overrides(self) -> dict:
        """The non-``None`` emulator network overrides as kwargs."""
        return {
            key: value
            for key, value in (
                ("jitter_sigma", self.jitter_sigma),
                ("straggler_prob", self.straggler_prob),
                ("straggler_factor", self.straggler_factor),
            )
            if value is not None
        }

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        return {
            "sigma": self.sigma,
            "param_sigma": dict(self.param_sigma),
            "op_sigma": self.op_sigma,
            "jitter_sigma": self.jitter_sigma,
            "straggler_prob": self.straggler_prob,
            "straggler_factor": self.straggler_factor,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "UQSpec":
        """Reconstruct a spec; unknown keys are an error (schema drift)."""
        known = {
            "sigma", "param_sigma", "op_sigma",
            "jitter_sigma", "straggler_prob", "straggler_factor",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown UQSpec keys: {sorted(unknown)}")
        return cls(**dict(doc))

    def fingerprint(self) -> str:
        """Short stable hash of the spec (store tags, manifests)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def store_tag(self) -> Optional[str]:
        """The :class:`repro.experiments.ExperimentStore` extra tag.

        ``None`` for the identity spec so a zero-noise UQ run *shares*
        entries with plain sweeps (same evaluations, same cache); any
        real perturbation gets its own keyspace.
        """
        if self.is_identity():
            return None
        return f"uq-{self.fingerprint()}"


@dataclass(frozen=True)
class MachineDraw:
    """One sampled machine: explicit LogGP values plus per-op cost factors.

    The unit an :class:`EmpiricalSpec` replays — typically one posterior
    draw of :mod:`repro.calib`.  Unlike :class:`UQSpec`'s relative
    sigmas, a draw carries *absolute* ``L, o, g, G`` values (µs) that
    replace the base machine's, plus multiplicative per-op cost factors
    applied via :class:`repro.machine.perturbed.ScaledCostModel`.

    ``ops`` accepts a mapping at construction and is normalised to a
    sorted tuple of ``(op, factor)`` pairs, so draws are hashable (the
    degenerate-posterior predicate needs set semantics) and their JSON
    and fingerprint forms are canonical.
    """

    L: float
    o: float
    g: float
    G: float
    ops: Union[Mapping[str, float], Sequence] = ()

    def __post_init__(self) -> None:
        for name in LOGGP_PARAMS:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"draw {name} must be a float >= 0, got {value!r}")
        pairs = (
            tuple(sorted(self.ops.items()))
            if isinstance(self.ops, Mapping)
            else tuple(sorted((str(op), float(f)) for op, f in self.ops))
        )
        for op, factor in pairs:
            if factor <= 0:
                raise ValueError(f"draw factor for {op!r} must be > 0, got {factor}")
        object.__setattr__(self, "ops", pairs)

    def op_factors(self) -> dict:
        """The per-op cost factors as a plain dict."""
        return dict(self.ops)

    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` inverts it bit-exactly."""
        return {"L": self.L, "o": self.o, "g": self.g, "G": self.G,
                "ops": dict(self.ops)}

    @classmethod
    def from_dict(cls, doc: Mapping) -> "MachineDraw":
        known = {"L", "o", "g", "G", "ops"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown MachineDraw keys: {sorted(unknown)}")
        return cls(**dict(doc))


@dataclass(frozen=True)
class EmpiricalSpec:
    """A UQ spec that replays an explicit draw set (a calibrated posterior).

    Implements the same protocol surface the engine, the sweep runner and
    the perturbation layer use on :class:`UQSpec` — the predicates, the
    network overrides, the fingerprint/store tag and the JSON round-trip
    — so ``run_uq(spec=EmpiricalSpec(...))`` needs no engine changes.

    Each replicate's machine is ``draws[i]`` where ``i`` is a stable hash
    of the replicate seed (:meth:`draw_for`): a pure function of the
    seed, so worker processes reproduce the same machine and the ensemble
    is identical across worker counts.  ``source`` is a provenance label
    (e.g. the calibration's posterior fingerprint) carried into manifests
    but excluded from :meth:`fingerprint` — two specs with equal draws
    mean equal evaluations and must share cache entries.
    """

    draws: Sequence
    source: str = ""

    def __post_init__(self) -> None:
        draws = tuple(
            d if isinstance(d, MachineDraw) else MachineDraw.from_dict(d)
            for d in self.draws
        )
        if not draws:
            raise ValueError("EmpiricalSpec needs at least one draw")
        object.__setattr__(self, "draws", draws)

    # -- predicates (the UQSpec protocol) ------------------------------------
    def is_deterministic(self) -> bool:
        """True when every draw is identical: replicates collapse."""
        return len(set(self.draws)) == 1

    def is_identity(self) -> bool:
        """Never the identity: the draw replaces the base machine."""
        return False

    def network_overrides(self) -> dict:
        """Empirical specs never override the emulated network's knobs."""
        return {}

    # -- draw selection ------------------------------------------------------
    def draw_for(self, seed: int) -> MachineDraw:
        """The draw replicate ``seed`` sees (stable hash, uniform over draws)."""
        from .sampler import derive_seed

        return self.draws[derive_seed("uq-empirical-draw", seed) % len(self.draws)]

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; ``kind`` discriminates from a plain UQSpec."""
        return {
            "kind": "empirical",
            "source": self.source,
            "draws": [d.to_dict() for d in self.draws],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "EmpiricalSpec":
        """Reconstruct a spec; unknown keys are an error (schema drift)."""
        known = {"kind", "source", "draws"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown EmpiricalSpec keys: {sorted(unknown)}")
        if doc.get("kind", "empirical") != "empirical":
            raise ValueError(f"not an empirical spec: kind={doc.get('kind')!r}")
        return cls(
            draws=tuple(MachineDraw.from_dict(d) for d in doc.get("draws", ())),
            source=str(doc.get("source", "")),
        )

    def fingerprint(self) -> str:
        """Short stable hash of the draw set (store tags, manifests)."""
        from ..core.fingerprint import posterior_fingerprint

        return posterior_fingerprint(self.draws)

    def store_tag(self) -> str:
        """Empirical ensembles always get their own store keyspace."""
        return f"uq-{self.fingerprint()}"


def spec_from_dict(doc: Mapping) -> Union[UQSpec, EmpiricalSpec]:
    """Reconstruct either spec flavour from its JSON document.

    Dispatches on the ``kind`` discriminator: ``"empirical"`` documents
    become :class:`EmpiricalSpec`; documents without a ``kind`` are plain
    :class:`UQSpec` (whose strict ``from_dict`` still rejects drift).
    """
    if doc.get("kind") == "empirical":
        return EmpiricalSpec.from_dict(doc)
    return UQSpec.from_dict(doc)

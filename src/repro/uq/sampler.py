"""Seeded sampling primitives shared by the UQ engine and the emulator.

Everything stochastic in the repository draws through this module so
that randomness is (a) *seeded* — the same seed always produces the same
draw, on every platform and in every worker process — and (b)
*addressable* — independent random streams are derived from readable
keys (``derive_seed("uq-replicate", base_seed, r)``) instead of from the
order in which code happens to consume one global stream.  That is what
lets replicates become ordinary sweep grid points: a replicate's entire
perturbation is a pure function of its derived seed.

The jitter/straggler draw of :class:`repro.machine.emulator.JitteredNetwork`
lives here too (:func:`apply_jitter` / :func:`jitter_normalizer`), so the
emulated network and the UQ engine share one audited implementation.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

__all__ = [
    "derive_seed",
    "child_rng",
    "replicate_seeds",
    "lognormal_multiplier",
    "apply_jitter",
    "jitter_normalizer",
]

Key = Union[int, str]

#: keys are joined with an unprintable separator so ("a", "bc") and
#: ("ab", "c") never collide
_SEP = "\x1f"


def derive_seed(*keys: Key) -> int:
    """A stable 64-bit seed from a sequence of readable keys.

    Hash-based (BLAKE2b), so it is identical across processes, platforms
    and Python versions — unlike ``hash()`` — and changing any key gives
    an unrelated seed.  Keys may be ints or strings.
    """
    if not keys:
        raise ValueError("derive_seed needs at least one key")
    for k in keys:
        if not isinstance(k, (int, str)):
            raise TypeError(f"seed keys must be int or str, got {type(k).__name__}")
    payload = _SEP.join(str(k) for k in keys)
    digest = hashlib.blake2b(payload.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def child_rng(*keys: Key) -> np.random.Generator:
    """An independent, deterministic RNG addressed by ``keys``.

    Two calls with the same keys return generators producing identical
    streams; different keys give statistically independent streams.
    """
    return np.random.default_rng(derive_seed(*keys))


def replicate_seeds(
    base_seed: int, replicates: int, deterministic: bool = False
) -> Tuple[int, ...]:
    """The per-replicate seeds of one UQ run.

    Stochastic runs derive one unrelated seed per replicate index; a
    ``deterministic`` spec (all sigmas zero) maps every replicate to the
    *base* seed, so downstream grid expansion — which drops duplicate
    points — collapses the ensemble to exactly the deterministic sweep.
    That collapse is what makes ``--sigma 0`` reproduce the plain sweep's
    result digest bit for bit.
    """
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    if deterministic:
        return (base_seed,) * replicates
    return tuple(
        derive_seed("uq-replicate", base_seed, r) for r in range(replicates)
    )


def lognormal_multiplier(rng: np.random.Generator, sigma: float) -> float:
    """A mean-one log-normal perturbation factor.

    ``exp(N(0, sigma) - sigma^2/2)``: the ``-sigma^2/2`` shift makes the
    *expectation* exactly 1, so perturbing a parameter never inflates its
    mean — the LogGP values stay the machine's average behaviour, as the
    paper requires of them.  ``sigma == 0`` returns exactly ``1.0``
    without consuming a draw.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0
    return float(np.exp(rng.normal(0.0, sigma) - sigma * sigma / 2.0))


def apply_jitter(
    value: float,
    rng: np.random.Generator,
    sigma: float,
    straggler_prob: float = 0.0,
    straggler_factor: float = 1.0,
) -> float:
    """One jittered-network draw applied to ``value`` (µs).

    The exact draw sequence :class:`repro.machine.network.JitteredNetwork`
    has always used, extracted verbatim so its output is bit-identical:
    a log-normal multiplier when ``sigma`` is non-zero, then — with
    probability ``straggler_prob`` — a further ``straggler_factor``
    contention spike.  Zero knobs consume no draws, so disabling jitter
    leaves the RNG stream untouched.
    """
    if sigma:
        value *= float(np.exp(rng.normal(0.0, sigma)))
    if straggler_prob and rng.random() < straggler_prob:
        value *= straggler_factor
    return value


def jitter_normalizer(
    sigma: float, straggler_prob: float = 0.0, straggler_factor: float = 1.0
) -> float:
    """The constant making :func:`apply_jitter` mean-preserving.

    ``E[apply_jitter(v)] == v * E[lognormal] * E[straggler]``; multiplying
    ``v`` by this normaliser first keeps the expected output at ``v`` —
    the LogGP ``L`` is the *mean* latency (paper section 4.1), so jitter
    must not systematically inflate it.
    """
    lognormal_mean = float(np.exp(sigma**2 / 2.0))
    straggler_mean = 1.0 + straggler_prob * (straggler_factor - 1.0)
    return 1.0 / (lognormal_mean * straggler_mean)

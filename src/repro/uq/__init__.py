"""Monte Carlo uncertainty quantification for running-time predictions.

The paper reports one predicted time per (n, b, layout) point, but the
machine parameters behind that number — the LogGP ``L, o, g, G`` and the
per-op block timings — are calibrated measurements with real spread.
This package turns the point prediction into a distribution:

1. a :class:`UQSpec` describes the parameter uncertainty (relative
   log-normal sigmas, optional emulated-network knob overrides);
2. :func:`run_uq` draws ``replicates`` seeded machine perturbations
   (:class:`repro.machine.PerturbedMachine`) and fans them through the
   parallel sweep engine — replicates *are* grid points, so worker
   pools, chunking, store resume and result digests all apply unchanged;
3. :func:`reduce_replicates` folds the ensemble into per-point
   mean/std/CI/min-max summaries, and :func:`oat_sensitivity` ranks
   which LogGP parameter moves the prediction most at each block size.

Zero noise (``sigma == 0``) collapses every replicate onto the base
seed, reproducing the deterministic sweep bit for bit — the anchor that
lets a statistical test harness gate stochastic outputs exactly.

All randomness flows through :mod:`repro.uq.sampler`, the shared seeded
sampling layer the machine emulator's jittered network also draws from.

The CLI front-end is ``python -m repro uq --replicates 64 --sigma 0.1``.
"""

from .reduce import METRIC_FIELDS, UQPointSummary, reduce_replicates, summary_digest
from .sampler import (
    apply_jitter,
    child_rng,
    derive_seed,
    jitter_normalizer,
    lognormal_multiplier,
    replicate_seeds,
)
from .spec import LOGGP_PARAMS, EmpiricalSpec, MachineDraw, UQSpec, spec_from_dict

__all__ = [
    "LOGGP_PARAMS",
    "METRIC_FIELDS",
    "EmpiricalSpec",
    "MachineDraw",
    "UQPointSummary",
    "UQResult",
    "UQSpec",
    "apply_jitter",
    "child_rng",
    "derive_seed",
    "jitter_normalizer",
    "lognormal_multiplier",
    "oat_sensitivity",
    "reduce_replicates",
    "replicate_seeds",
    "run_uq",
    "spec_from_dict",
    "summary_digest",
]

#: engine exports resolved lazily: the engine pulls in the sweep runner
#: and the machine emulator, and the emulator's network imports our
#: sampler — eager importing here would make that a cycle
_ENGINE_EXPORTS = {"UQResult", "run_uq", "oat_sensitivity"}


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _ENGINE_EXPORTS)

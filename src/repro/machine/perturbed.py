"""Perturbed machines: one Monte Carlo replicate's view of the hardware.

A :class:`PerturbedMachine` binds the base LogGP parameters, the base
cost model and a :class:`repro.uq.UQSpec`; :meth:`PerturbedMachine.sample`
materialises the machine one replicate sees.  The draw is a pure function
of the replicate seed — every knob gets its own addressed RNG stream
(:func:`repro.uq.sampler.child_rng`), so enabling, say, op-timing noise
never shifts the network-parameter draws, and any worker process
reproduces the same machine from the same seed.

All multipliers are mean-preserving log-normals: the perturbed ensemble
scatters *around* the calibrated machine instead of drifting away from
it.  A deterministic spec returns the base objects themselves, so the
zero-noise path is bit-for-bit the unperturbed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..blockops.ops import OP_NAMES
from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters
from ..uq.sampler import child_rng, lognormal_multiplier
from ..uq.spec import LOGGP_PARAMS, EmpiricalSpec, UQSpec

__all__ = ["ScaledCostModel", "PerturbedMachine"]


@dataclass(frozen=True)
class ScaledCostModel:
    """A cost model with per-op multiplicative factors (one replicate's).

    Picklable wrapper: sweep workers receive the base model plus the
    factor table, never an RNG.  Ops without a factor pass through.
    """

    base: CostModel
    factors: Mapping[str, float]

    def __post_init__(self) -> None:
        for op, factor in self.factors.items():
            if factor <= 0:
                raise ValueError(f"factor for {op!r} must be > 0, got {factor}")
        object.__setattr__(self, "factors", dict(self.factors))

    def cost(self, op: str, b: int) -> float:
        """The base cost scaled by this replicate's factor for ``op``."""
        return self.base.cost(op, b) * self.factors.get(op, 1.0)

    def fingerprint(self):
        """Base fingerprint plus the exact factor table, or ``None``.

        Folding the ``repr``-exact factors in guarantees the kernel cost
        memo misses between replicates; an un-fingerprintable base makes
        this model un-fingerprintable too (memo bypass, probe fallback
        in stores).
        """
        from ..core.fingerprint import cost_model_fingerprint

        base_fp = cost_model_fingerprint(self.base)
        if base_fp is None:
            return None
        factors = ";".join(f"{op}={f!r}" for op, f in sorted(self.factors.items()))
        return f"scaled:[{base_fp}]:{factors}"


@dataclass(frozen=True)
class PerturbedMachine:
    """Samples (LogGP parameters, cost model) pairs for UQ replicates."""

    params: LogGPParameters
    cost_model: CostModel
    spec: UQSpec

    def sample(self, seed: int) -> Tuple[LogGPParameters, CostModel]:
        """The machine replicate ``seed`` sees.

        Deterministic in ``seed``; a spec with no noise returns the base
        ``(params, cost_model)`` objects unchanged (bit-identical path).

        An :class:`repro.uq.EmpiricalSpec` replays its draw set instead
        of sampling noise: the seed selects one :class:`~repro.uq.spec.
        MachineDraw`, whose absolute ``L, o, g, G`` replace the base
        parameters and whose per-op factors wrap the base cost model.
        """
        if isinstance(self.spec, EmpiricalSpec):
            draw = self.spec.draw_for(seed)
            params = self.params.with_(L=draw.L, o=draw.o, g=draw.g, G=draw.G)
            factors = {op: f for op, f in draw.ops if f != 1.0}
            cost_model = (
                ScaledCostModel(self.cost_model, factors)
                if factors
                else self.cost_model
            )
            return params, cost_model
        if self.spec.is_deterministic():
            return self.params, self.cost_model
        changes = {}
        for name in LOGGP_PARAMS:
            sigma = self.spec.effective_sigma(name)
            if sigma:
                factor = lognormal_multiplier(
                    child_rng("uq-param", seed, name), sigma
                )
                changes[name] = getattr(self.params, name) * factor
        params = self.params.with_(**changes) if changes else self.params
        cost_model = self.cost_model
        if self.spec.op_sigma:
            factors = {
                op: lognormal_multiplier(
                    child_rng("uq-op", seed, op), self.spec.op_sigma
                )
                for op in OP_NAMES
            }
            cost_model = ScaledCostModel(self.cost_model, factors)
        return params, cost_model

"""The emulated "real machine" (Meiko CS-2 stand-in).

Built from: per-node caches (:mod:`.cache`), node CPUs (:mod:`.cpu`), a
jittered LogGP network (:mod:`.network`), a Split-C-style active-message
runtime (:mod:`.activemsg`) and the trace-executing emulator
(:mod:`.emulator`) that produces the "measured" series of Figures 7-9.
"""

from .activemsg import ActiveMessagePort, SplitCMachine
from .cache import BlockCache, CacheStats, LineCache
from .cpu import CompPhaseResult, NodeCPU, touched_blocks
from .emulator import MachineEmulator, MeasuredReport
from .network import JitteredNetwork
from .profiler import ProcessorProfile, ProgramProfile, profile_program
from .topology import FatTree, Mesh2D, RingTopology, Topology, UniformTopology

__all__ = [
    "ActiveMessagePort",
    "SplitCMachine",
    "BlockCache",
    "CacheStats",
    "LineCache",
    "CompPhaseResult",
    "NodeCPU",
    "touched_blocks",
    "MachineEmulator",
    "MeasuredReport",
    "JitteredNetwork",
    "ProcessorProfile",
    "ProgramProfile",
    "profile_program",
    "Topology",
    "FatTree",
    "Mesh2D",
    "RingTopology",
    "UniformTopology",
]

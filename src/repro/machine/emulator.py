"""The machine emulator: our stand-in for "real execution" on the Meiko CS-2.

The paper validates its prediction against measurements of the real
machine.  We have no CS-2, so :class:`MachineEmulator` plays its role: it
executes the *same* program trace the predictor consumes, but models the
effects the paper's simple prediction deliberately omits (section 6.3):

* **cache misses** — per-node block caches (``machine.cache``) charge
  line fills when operand blocks are not resident;
* **iteration overhead** — each node scans all of its assigned blocks
  every step (``machine.cpu``);
* **local transfers** — self-messages are memory copies with a per-byte
  cost (``machine.network``);
* **network variability** — per-message latencies jitter around the LogGP
  ``L`` (``machine.network``), executed by the causal active-message model
  on the DES engine.

Consequently "measured" totals exceed the simple prediction for small
blocks (cache + iteration effects), measured communication sits above the
standard simulation (jitter + local copies) but below the worst-case
bound, and measured computation slightly exceeds predicted computation —
exactly the qualitative relationships of Figures 7-9.

The emulator also reports the paper's instrumentation split: the run
where a separately-timed cache-warming section is subtracted out
("measured w/o caching", Figure 7 top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..blockops.calibration import (
    CS2_CACHE_BYTES,
    CS2_LINE_BYTES,
    CS2_MISS_PENALTY_US,
    SCAN_US_PER_BLOCK,
)
from ..core.costmodel import CostModel
from ..core.des_check import simulate_causal
from ..core.loggp import LogGPParameters
from ..kernel import flags as _kernel_flags
from ..obs.events import get_tracer
from ..trace.program import ProgramTrace
from .cache import BlockCache
from .cpu import NodeCPU
from .network import JitteredNetwork

__all__ = ["MeasuredReport", "MachineEmulator"]


@dataclass
class MeasuredReport:
    """What the emulated machine "measures" for one program run."""

    #: wall-clock completion, µs (includes every modelled effect)
    total_us: float
    #: per-processor computation time: warm op cost + iteration overhead
    per_proc_comp_us: dict[int, float]
    #: per-processor separately-timed cache-warming section (paper §6.3)
    per_proc_cache_us: dict[int, float]
    #: per-processor local-copy time (self-messages)
    per_proc_local_us: dict[int, float]
    #: per-processor final clock
    per_proc_total_us: dict[int, float]
    meta: dict = field(default_factory=dict)

    @property
    def comp_us(self) -> float:
        """Measured computation time (Figure 9 series): max over processors."""
        return max(self.per_proc_comp_us.values(), default=0.0)

    @property
    def cache_us(self) -> float:
        """The separately-timed caching section: max over processors."""
        return max(self.per_proc_cache_us.values(), default=0.0)

    @property
    def comm_us(self) -> float:
        """Measured communication time (Figure 8): everything that is
        neither computation nor the caching section, max over processors."""
        return max(
            (
                self.per_proc_total_us[p]
                - self.per_proc_comp_us.get(p, 0.0)
                - self.per_proc_cache_us.get(p, 0.0)
                for p in self.per_proc_total_us
            ),
            default=0.0,
        )

    @property
    def total_without_cache_us(self) -> float:
        """"Measured w/o caching": total minus the caching section."""
        return max(
            (
                self.per_proc_total_us[p] - self.per_proc_cache_us.get(p, 0.0)
                for p in self.per_proc_total_us
            ),
            default=0.0,
        )

    def breakdown(self) -> dict[str, float]:
        """``{"total", "total_wo_cache", "comp", "comm", "cache"}`` in µs."""
        return {
            "total": self.total_us,
            "total_wo_cache": self.total_without_cache_us,
            "comp": self.comp_us,
            "comm": self.comm_us,
            "cache": self.cache_us,
        }


class MachineEmulator:
    """Executes a program trace on the emulated Meiko-CS-2 stand-in.

    Parameters
    ----------
    params:
        LogGP means of the machine's network.
    cost_model:
        Warm-cache basic-op costs (the same Figure 6 table the predictor
        uses — the emulator differs only in the omitted effects).
    cache_bytes:
        Per-node cache capacity; ``None`` disables cache modelling.
    network:
        Jittered network; defaults to a :class:`JitteredNetwork` seeded
        from ``seed``.
    noise_sigma:
        Multiplicative timing noise on basic ops.
    scan_us_per_block:
        Iteration-overhead rate; 0 disables it.
    seed:
        Master seed for all stochastic parts.
    """

    def __init__(
        self,
        params: LogGPParameters,
        cost_model: CostModel,
        cache_bytes: Optional[int] = CS2_CACHE_BYTES,
        line_bytes: int = CS2_LINE_BYTES,
        miss_penalty_us: float = CS2_MISS_PENALTY_US,
        network: Optional[JitteredNetwork] = None,
        noise_sigma: float = 0.02,
        scan_us_per_block: float = SCAN_US_PER_BLOCK,
        seed: int = 0,
    ):
        self.params = params
        self.cost_model = cost_model
        self.cache_bytes = cache_bytes
        self.line_bytes = line_bytes
        self.miss_penalty_us = miss_penalty_us
        self.network = (
            network
            if network is not None
            else JitteredNetwork(params=params, seed=seed)
        )
        self.noise_sigma = noise_sigma
        self.scan_us_per_block = scan_us_per_block
        self.seed = seed

    def run(self, trace: ProgramTrace) -> MeasuredReport:
        """Execute the program; returns the emulated measurements.

        When the ambient observability tracer is enabled, the run emits
        structured events on the ``emulator`` track: per-phase ``compute``
        slices (with cache/scan attribution), ``local_copy`` slices for
        self-messages, and the causal communication model's
        ``comm``/``send``/``recv`` slices (see :mod:`repro.obs`).
        """
        tracer = get_tracer()
        with tracer.in_track("emulator"):
            return self._run_traced(trace, tracer)

    def _run_traced(self, trace: ProgramTrace, tracer) -> MeasuredReport:
        # the two slice categories this loop emits, hoisted out of it
        traced = tracer.enabled and tracer.wants("compute")
        traced_copy = tracer.enabled and tracer.wants("local_copy")
        cost_model = self.cost_model
        if _kernel_flags.enabled:
            # Safe under timing noise: NodeCPU draws its noise factor
            # separately and multiplies the (pure) cost — so memoising the
            # cost changes nothing, including the RNG stream.
            from ..kernel.memo import memoize

            cost_model = memoize(cost_model)
        owned = trace.blocks_by_proc()
        cpus: dict[int, NodeCPU] = {}
        for p in range(trace.num_procs):
            cache = BlockCache(self.cache_bytes) if self.cache_bytes else None
            cpus[p] = NodeCPU(
                cost_model=cost_model,
                cache=cache,
                assigned_blocks=len(owned.get(p, {})),
                line_bytes=self.line_bytes,
                miss_penalty_us=self.miss_penalty_us,
                scan_us_per_block=self.scan_us_per_block,
                noise_sigma=self.noise_sigma,
                rng=np.random.default_rng((self.seed, p)),
            )

        clocks = {p: 0.0 for p in range(trace.num_procs)}
        comp = {p: 0.0 for p in range(trace.num_procs)}
        cache_acc = {p: 0.0 for p in range(trace.num_procs)}
        local_acc = {p: 0.0 for p in range(trace.num_procs)}

        for step_idx, step in enumerate(trace.steps):
            for proc, ops in step.work.items():
                if not ops:
                    continue
                phase = cpus[proc].run_phase(ops)
                if traced:
                    tracer.slice(
                        "compute", proc=proc, ts=clocks[proc],
                        dur=phase.total_us, step=step_idx,
                        warm_us=phase.warm_us, cache_us=phase.cache_us,
                        scan_us=phase.scan_us,
                    )
                clocks[proc] += phase.total_us
                comp[proc] += phase.warm_us + phase.scan_us
                cache_acc[proc] += phase.cache_us

            if step.pattern is None:
                continue
            remote = step.pattern.remote_messages()
            if remote:
                participants = {p for m in remote for p in (m.src, m.dst)}
                starts = {p: clocks[p] for p in participants}
                result = simulate_causal(
                    self.params,
                    step.pattern,
                    start_times=starts,
                    latency_of=self.network.latency_of,
                )
                for p in participants:
                    clocks[p] = result.ctimes.get(p, clocks[p])
            for msg in step.pattern.local_messages():
                cost = self.network.local_copy_us(msg)
                if traced_copy:
                    tracer.slice(
                        "local_copy", proc=msg.src, ts=clocks[msg.src],
                        dur=cost, bytes=msg.size, step=step_idx,
                    )
                clocks[msg.src] += cost
                local_acc[msg.src] += cost

        if tracer.enabled:
            tracer.count("emulator.runs")
            tracer.count("emulator.steps", len(trace.steps))
        return MeasuredReport(
            total_us=max(clocks.values(), default=0.0),
            per_proc_comp_us=comp,
            per_proc_cache_us=cache_acc,
            per_proc_local_us=local_acc,
            per_proc_total_us=dict(clocks),
            meta=dict(trace.meta),
        )

"""Network topologies: per-pair latencies under the LogGP abstraction.

The LogGP model collapses the network into a single latency upper bound
``L`` — reasonable for the Meiko CS-2, whose **fat-tree** interconnect
keeps hop counts nearly uniform.  This module makes that design decision
inspectable: it provides hop-count models for the classic topologies and
a per-message latency function (`latency_of`) that the causal simulator
and the machine emulator accept, so one can quantify how much a
non-uniform network would bend the paper's single-``L`` predictions.

Latency model: ``L(src, dst) = switch_us * hops(src, dst)`` with
``hops`` topology-specific; ``uniform_equivalent`` gives the traffic-
agnostic mean, which is the ``L`` a micro-benchmark calibration would
report on that machine.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable

from ..core.message import Message

__all__ = ["Topology", "FatTree", "Mesh2D", "RingTopology", "UniformTopology"]


class Topology(abc.ABC):
    """Abstract hop-count model over ``num_procs`` endpoints."""

    def __init__(self, num_procs: int):
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        self.num_procs = num_procs

    @abc.abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Switch traversals between two endpoints (0 for src == dst)."""

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_procs and 0 <= dst < self.num_procs):
            raise ValueError(f"endpoint out of range for P={self.num_procs}")

    # -- derived -----------------------------------------------------------
    def diameter(self) -> int:
        """Maximum hop count over all pairs."""
        return max(
            self.hops(s, d)
            for s in range(self.num_procs)
            for d in range(self.num_procs)
        )

    def mean_hops(self) -> float:
        """Average hops over all ordered distinct pairs."""
        if self.num_procs == 1:
            return 0.0
        total = sum(
            self.hops(s, d)
            for s in range(self.num_procs)
            for d in range(self.num_procs)
            if s != d
        )
        return total / (self.num_procs * (self.num_procs - 1))

    def latency_fn(self, switch_us: float) -> Callable[[Message], float]:
        """A per-message latency function for the simulators/emulator."""
        if switch_us < 0:
            raise ValueError("switch_us must be non-negative")

        def latency_of(message: Message) -> float:
            return switch_us * self.hops(message.src, message.dst)

        return latency_of

    def uniform_equivalent(self, switch_us: float) -> float:
        """The single ``L`` a calibration would measure on this network."""
        return switch_us * self.mean_hops()


class UniformTopology(Topology):
    """Every distinct pair is ``hops`` apart (the plain LogGP abstraction)."""

    def __init__(self, num_procs: int, uniform_hops: int = 1):
        super().__init__(num_procs)
        if uniform_hops < 1:
            raise ValueError("uniform_hops must be >= 1")
        self.uniform_hops = uniform_hops

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else self.uniform_hops


class FatTree(Topology):
    """A k-ary fat tree (the Meiko CS-2's interconnect shape).

    Leaves are processors; each internal switch has ``arity`` children.
    A message climbs to the lowest common ancestor and descends:
    ``hops = 2 * levels_to_lca``.
    """

    def __init__(self, num_procs: int, arity: int = 4):
        super().__init__(num_procs)
        if arity < 2:
            raise ValueError("arity must be >= 2")
        self.arity = arity
        self.levels = max(1, math.ceil(math.log(max(num_procs, 2), arity)))

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        # find the level at which the subtrees of src and dst merge
        a, b = src, dst
        level = 0
        while a != b:
            a //= self.arity
            b //= self.arity
            level += 1
        return 2 * level


class Mesh2D(Topology):
    """A ``width x height`` mesh with dimension-ordered (Manhattan) routing."""

    def __init__(self, width: int, height: int):
        super().__init__(width * height)
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height

    def coords(self, proc: int) -> tuple[int, int]:
        """``(x, y)`` position of an endpoint."""
        self._check(proc, proc)
        return proc % self.width, proc // self.width

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (x0, y0), (x1, y1) = self.coords(src), self.coords(dst)
        return abs(x0 - x1) + abs(y0 - y1)


class RingTopology(Topology):
    """A bidirectional ring; messages take the shorter way around."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.num_procs - d)

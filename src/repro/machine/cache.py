"""Set-associative LRU cache model for the emulated node.

The Meiko CS-2 stand-in charges cache-line fills when a basic operation's
operand blocks are not resident — the effect the paper identifies as the
dominant gap between its simple prediction and the real measurements
("when processors are assigned many non-adjacent small blocks, the cache
miss rate increases", section 6.3).

Two granularities are provided:

* :class:`LineCache` — a faithful set-associative LRU cache over line
  addresses, used by unit tests and micro-experiments;
* :class:`BlockCache` — an LRU over whole basic blocks with a byte
  capacity, the granularity the emulator uses in anger (touching every
  line of 300k block operations would be prohibitively slow in Python,
  and block-level residency is the quantity that matters here: a block is
  either still resident since its last use or it is not).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["CacheStats", "LineCache", "BlockCache"]


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 if no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class LineCache:
    """Set-associative LRU cache over byte addresses.

    ``access(addr)`` touches the line containing ``addr`` and reports
    whether it hit; ``access_range(addr, nbytes)`` walks a buffer.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 32, ways: int = 4):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # per-set LRU: OrderedDict of tag -> None, most recent last
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; True on hit."""
        if addr < 0:
            raise ValueError("address must be non-negative")
        line = addr // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entry = self._sets[set_idx]
        if tag in entry:
            entry.move_to_end(tag)
            self.stats.hits += 1
            return True
        if len(entry) >= self.ways:
            entry.popitem(last=False)  # evict LRU
        entry[tag] = None
        self.stats.misses += 1
        return False

    def access_range(self, addr: int, nbytes: int) -> int:
        """Touch every line of ``[addr, addr+nbytes)``; returns miss count."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first = addr // self.line_bytes
        last = (addr + nbytes - 1) // self.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * self.line_bytes):
                misses += 1
        return misses

    def flush(self) -> None:
        """Empty the cache (statistics retained)."""
        for s in self._sets:
            s.clear()


class BlockCache:
    """LRU over whole blocks with a byte-capacity budget.

    ``touch(key, nbytes)`` marks the block resident (evicting LRU blocks
    to fit) and returns True if it was already resident.  Blocks larger
    than the cache are never resident afterwards (they flow through).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._resident: OrderedDict[Hashable, int] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    def touch(self, key: Hashable, nbytes: int) -> bool:
        """Access block ``key`` of ``nbytes``; True on hit."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if key in self._resident:
            self._resident.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if nbytes > self.capacity_bytes:
            # streams through the cache: evict everything, keep nothing
            self._resident.clear()
            self._used = 0
            return False
        while self._used + nbytes > self.capacity_bytes and self._resident:
            _, evicted = self._resident.popitem(last=False)
            self._used -= evicted
        self._resident[key] = nbytes
        self._used += nbytes
        return False

    def invalidate(self, key: Hashable) -> None:
        """Drop one block if resident (e.g. overwritten by a message)."""
        size = self._resident.pop(key, None)
        if size is not None:
            self._used -= size

    def flush(self) -> None:
        """Empty the cache (statistics retained)."""
        self._resident.clear()
        self._used = 0

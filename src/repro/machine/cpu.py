"""Emulated node CPU: basic-op execution with cache and iteration overheads.

Computes how long one processor's computation phase *really* takes on the
emulated machine: the warm-cache operation cost (same cost model the
predictor uses — the emulator and the predictor disagree only about the
effects the paper says the simple prediction omits), plus:

* **cache penalties** — each operand block is looked up in the node's
  :class:`~repro.machine.cache.BlockCache`; a miss costs a line-fill per
  operand line;
* **iteration overhead** — every step, the processor scans all of its
  assigned blocks to find the active ones (the Split-C implementation's
  loop structure), at :data:`~repro.blockops.calibration.SCAN_US_PER_BLOCK`
  per block;
* optional multiplicative **timing noise** (real machines are not exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from ..blockops.calibration import (
    CS2_LINE_BYTES,
    CS2_MISS_PENALTY_US,
    SCAN_US_PER_BLOCK,
)
from ..core.costmodel import CostModel
from ..trace.program import Work
from .cache import BlockCache

__all__ = ["touched_blocks", "NodeCPU", "CompPhaseResult"]


def touched_blocks(work: Work) -> list[tuple[Hashable, int]]:
    """Operand blocks (key, bytes) one basic-op invocation touches.

    Keys distinguish matrix blocks from the factor/stream buffers flowing
    through the wavefront; byte sizes are float64 footprints.
    """
    b = work.b
    block_bytes = b * b * 8
    tri_bytes = b * (b + 1) // 2 * 8
    i, j = work.block
    k = work.iteration
    if work.op == "op1":
        return [(("blk", i, j), block_bytes)]
    if work.op == "op2":
        return [(("blk", i, j), block_bytes), (("factL", k), tri_bytes)]
    if work.op == "op3":
        return [(("blk", i, j), block_bytes), (("factU", k), tri_bytes)]
    if work.op == "op4":
        return [
            (("blk", i, j), block_bytes),
            (("col", i, k), block_bytes),
            (("row", k, j), block_bytes),
        ]
    # non-GE op: charge its own block only
    return [(("blk", i, j), block_bytes)]


@dataclass(frozen=True)
class CompPhaseResult:
    """Outcome of one computation phase on one emulated node."""

    total_us: float
    warm_us: float
    cache_us: float
    scan_us: float


class NodeCPU:
    """One emulated processor's execution engine.

    Parameters
    ----------
    cost_model:
        Warm-cache basic-op costs (shared with the predictor).
    cache:
        The node's block cache, or ``None`` to emulate a machine without
        cache effects (the paper's "measured w/o caching" series).
    assigned_blocks:
        How many blocks this processor owns (drives the per-step scan
        overhead); 0 disables the scan term.
    noise_sigma:
        Std-dev of the multiplicative log-normal timing noise (0 = exact).
    rng:
        Randomness source for the noise.
    """

    def __init__(
        self,
        cost_model: CostModel,
        cache: Optional[BlockCache] = None,
        assigned_blocks: int = 0,
        line_bytes: int = CS2_LINE_BYTES,
        miss_penalty_us: float = CS2_MISS_PENALTY_US,
        scan_us_per_block: float = SCAN_US_PER_BLOCK,
        noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if assigned_blocks < 0:
            raise ValueError("assigned_blocks must be >= 0")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self.cost_model = cost_model
        self.cache = cache
        self.assigned_blocks = assigned_blocks
        self.line_bytes = line_bytes
        self.miss_penalty_us = miss_penalty_us
        self.scan_us_per_block = scan_us_per_block
        self.noise_sigma = noise_sigma
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _noise(self) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        return float(np.exp(self.rng.normal(0.0, self.noise_sigma)))

    def run_phase(self, ops: Sequence[Work]) -> CompPhaseResult:
        """Execute one computation phase; returns its timing breakdown.

        Miss penalties are scaled by a *cacheability factor*
        ``max(0, 1 - footprint/capacity)``: an operation whose operands
        could never be co-resident streams from memory regardless of the
        cache state, and that streaming cost is already inside the warm
        (Figure 6) cost — the paper's cache distortion is specifically a
        small-block effect ("many non-adjacent small blocks", §6.3).
        """
        warm = 0.0
        cache_extra = 0.0
        for w in ops:
            warm += self.cost_model.cost(w.op, w.b) * self._noise()
            if self.cache is not None:
                touched = touched_blocks(w)
                footprint = sum(nbytes for _, nbytes in touched)
                cacheable = max(0.0, 1.0 - footprint / self.cache.capacity_bytes)
                for key, nbytes in touched:
                    if not self.cache.touch(key, nbytes) and cacheable > 0.0:
                        cache_extra += (
                            (nbytes / self.line_bytes) * self.miss_penalty_us * cacheable
                        )
        scan = self.scan_us_per_block * self.assigned_blocks if ops else 0.0
        return CompPhaseResult(
            total_us=warm + cache_extra + scan,
            warm_us=warm,
            cache_us=cache_extra,
            scan_us=scan,
        )

"""Lost-cycles profiling of simulated program executions.

The paper situates itself against overhead-decomposition approaches such
as Crovella & LeBlanc's *lost cycles analysis* (its reference [4]): break
a parallel execution into useful computation plus categorised overheads.
This profiler applies that lens to our simulated executions — for every
processor, each microsecond of the run is attributed to exactly one
bucket:

* ``compute``    — executing basic operations,
* ``send``       — engaged transmitting (port busy),
* ``recv``       — engaged receiving,
* ``wait``       — inside a communication phase but idle (gap stalls,
  waiting for messages to arrive, waiting for peers),
* ``idle``       — after the processor's own completion until the
  program's completion (load imbalance tail).

The buckets are exact: they are derived from the same per-step clock
advances the :class:`~repro.core.program_sim.ProgramSimulator` makes, so
``compute + send + recv + wait + idle == makespan`` for every processor.

Since the observability layer (:mod:`repro.obs`) landed, this profiler is
a *consumer of the event stream* rather than a parallel implementation:
:func:`profile_program` runs the ordinary
:class:`~repro.core.program_sim.ProgramSimulator` with a tracer attached
and folds the emitted ``compute``/``comm``/``send``/``recv`` slices into
buckets via :func:`repro.obs.aggregate.profile_from_events`.  The same
aggregation applied to an exported Chrome trace reproduces these numbers
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters
from ..core.program_sim import ProgramSimulator
from ..obs.aggregate import BUCKET_NAMES, profile_from_events
from ..obs.events import Tracer, get_tracer, tracing
from ..trace.program import ProgramTrace

__all__ = ["ProcessorProfile", "ProgramProfile", "profile_program"]

BUCKETS = BUCKET_NAMES

_MODES = ("standard", "worstcase", "causal")


@dataclass
class ProcessorProfile:
    """One processor's time decomposition (all µs)."""

    proc: int
    compute: float = 0.0
    send: float = 0.0
    recv: float = 0.0
    wait: float = 0.0
    idle: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all buckets (== program makespan)."""
        return self.compute + self.send + self.recv + self.wait + self.idle

    @property
    def busy(self) -> float:
        """Non-idle, non-wait time."""
        return self.compute + self.send + self.recv

    def fractions(self) -> dict[str, float]:
        """Bucket shares of the makespan (empty profile → all zeros)."""
        t = self.total
        if t == 0:
            return {b: 0.0 for b in BUCKETS}
        return {b: getattr(self, b) / t for b in BUCKETS}


@dataclass
class ProgramProfile:
    """Whole-program lost-cycles decomposition."""

    makespan_us: float
    processors: dict[int, ProcessorProfile] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def bucket_totals(self) -> dict[str, float]:
        """Aggregate µs per bucket over all processors."""
        out = {b: 0.0 for b in BUCKETS}
        for prof in self.processors.values():
            for b in BUCKETS:
                out[b] += getattr(prof, b)
        return out

    @property
    def utilization(self) -> float:
        """Average fraction of time processors spend computing."""
        if not self.processors or self.makespan_us == 0:
            return 0.0
        total_compute = sum(p.compute for p in self.processors.values())
        return total_compute / (self.makespan_us * len(self.processors))

    @property
    def lost_cycles_us(self) -> float:
        """Everything that is not computation, summed over processors."""
        totals = self.bucket_totals()
        return totals["send"] + totals["recv"] + totals["wait"] + totals["idle"]

    def describe(self) -> str:
        """Readable per-processor table plus the aggregate split."""
        lines = [f"lost-cycles profile: makespan {self.makespan_us:.1f} us"]
        header = f"{'proc':>5} " + " ".join(f"{b:>10}" for b in BUCKETS)
        lines.append(header)
        for proc in sorted(self.processors):
            p = self.processors[proc]
            lines.append(
                f"P{proc:<4} "
                + " ".join(f"{getattr(p, b):10.1f}" for b in BUCKETS)
            )
        totals = self.bucket_totals()
        lines.append(
            "total " + " ".join(f"{totals[b]:10.1f}" for b in BUCKETS)
        )
        lines.append(f"utilization {100 * self.utilization:.1f}%")
        return "\n".join(lines)


def profile_program(
    trace: ProgramTrace,
    params: LogGPParameters,
    cost_model: CostModel,
    mode: Literal["standard", "worstcase", "causal"] = "standard",
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> ProgramProfile:
    """Simulate ``trace`` and decompose every processor's time into buckets.

    The simulation is exactly a
    :class:`~repro.core.program_sim.ProgramSimulator` run in ``mode`` —
    same clock carrying, same communication algorithm, same RNG stream.
    The profile is built from the structured events that run emits, via
    :func:`repro.obs.aggregate.profile_from_events`; pass an explicit
    ``tracer`` to also keep the raw events (e.g. for a Chrome trace export
    alongside the profile).  When no tracer is given and the ambient one
    is disabled, a private throwaway tracer collects the events.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r}")
    tr = tracer if tracer is not None else get_tracer()
    if not tr.enabled:
        tr = Tracer()
    with tracing(tr):
        i0 = len(tr.events)
        report = ProgramSimulator(
            params, cost_model, mode=mode, seed=seed
        ).run(trace)
    return profile_from_events(
        tr.events[i0:],
        num_procs=trace.num_procs,
        makespan=report.total_us,
        meta=dict(trace.meta),
    )

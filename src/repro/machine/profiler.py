"""Lost-cycles profiling of simulated program executions.

The paper situates itself against overhead-decomposition approaches such
as Crovella & LeBlanc's *lost cycles analysis* (its reference [4]): break
a parallel execution into useful computation plus categorised overheads.
This profiler applies that lens to our simulated executions — for every
processor, each microsecond of the run is attributed to exactly one
bucket:

* ``compute``    — executing basic operations,
* ``send``       — engaged transmitting (port busy),
* ``recv``       — engaged receiving,
* ``wait``       — inside a communication phase but idle (gap stalls,
  waiting for messages to arrive, waiting for peers),
* ``idle``       — after the processor's own completion until the
  program's completion (load imbalance tail).

The buckets are exact: they are derived from the same per-step clock
advances the :class:`~repro.core.program_sim.ProgramSimulator` makes, so
``compute + send + recv + wait + idle == makespan`` for every processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.costmodel import CostModel
from ..core.loggp import LogGPParameters, OpKind
from ..core.standard_sim import simulate_standard
from ..core.worstcase_sim import simulate_worstcase
from ..core.des_check import simulate_causal
from ..trace.program import ProgramTrace

__all__ = ["ProcessorProfile", "ProgramProfile", "profile_program"]

BUCKETS = ("compute", "send", "recv", "wait", "idle")

_SIMULATORS = {
    "standard": simulate_standard,
    "worstcase": simulate_worstcase,
    "causal": simulate_causal,
}


@dataclass
class ProcessorProfile:
    """One processor's time decomposition (all µs)."""

    proc: int
    compute: float = 0.0
    send: float = 0.0
    recv: float = 0.0
    wait: float = 0.0
    idle: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all buckets (== program makespan)."""
        return self.compute + self.send + self.recv + self.wait + self.idle

    @property
    def busy(self) -> float:
        """Non-idle, non-wait time."""
        return self.compute + self.send + self.recv

    def fractions(self) -> dict[str, float]:
        """Bucket shares of the makespan (empty profile → all zeros)."""
        t = self.total
        if t == 0:
            return {b: 0.0 for b in BUCKETS}
        return {b: getattr(self, b) / t for b in BUCKETS}


@dataclass
class ProgramProfile:
    """Whole-program lost-cycles decomposition."""

    makespan_us: float
    processors: dict[int, ProcessorProfile] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def bucket_totals(self) -> dict[str, float]:
        """Aggregate µs per bucket over all processors."""
        out = {b: 0.0 for b in BUCKETS}
        for prof in self.processors.values():
            for b in BUCKETS:
                out[b] += getattr(prof, b)
        return out

    @property
    def utilization(self) -> float:
        """Average fraction of time processors spend computing."""
        if not self.processors or self.makespan_us == 0:
            return 0.0
        total_compute = sum(p.compute for p in self.processors.values())
        return total_compute / (self.makespan_us * len(self.processors))

    @property
    def lost_cycles_us(self) -> float:
        """Everything that is not computation, summed over processors."""
        totals = self.bucket_totals()
        return totals["send"] + totals["recv"] + totals["wait"] + totals["idle"]

    def describe(self) -> str:
        """Readable per-processor table plus the aggregate split."""
        lines = [f"lost-cycles profile: makespan {self.makespan_us:.1f} us"]
        header = f"{'proc':>5} " + " ".join(f"{b:>10}" for b in BUCKETS)
        lines.append(header)
        for proc in sorted(self.processors):
            p = self.processors[proc]
            lines.append(
                f"P{proc:<4} "
                + " ".join(f"{getattr(p, b):10.1f}" for b in BUCKETS)
            )
        totals = self.bucket_totals()
        lines.append(
            "total " + " ".join(f"{totals[b]:10.1f}" for b in BUCKETS)
        )
        lines.append(f"utilization {100 * self.utilization:.1f}%")
        return "\n".join(lines)


def profile_program(
    trace: ProgramTrace,
    params: LogGPParameters,
    cost_model: CostModel,
    mode: Literal["standard", "worstcase", "causal"] = "standard",
    seed: int = 0,
) -> ProgramProfile:
    """Simulate ``trace`` and decompose every processor's time into buckets.

    The simulation is identical to
    :class:`~repro.core.program_sim.ProgramSimulator` in ``mode`` — same
    clock carrying, same communication algorithm — with the accounting
    described in the module docstring layered on top.
    """
    if mode not in _SIMULATORS:
        raise ValueError(f"unknown mode {mode!r}")
    simulate = _SIMULATORS[mode]
    rng = np.random.default_rng(seed)

    procs = list(range(trace.num_procs))
    clocks = {p: 0.0 for p in procs}
    profile = {p: ProcessorProfile(proc=p) for p in procs}

    for step in trace.steps:
        for proc, ops in step.work.items():
            t = sum(cost_model.cost(w.op, w.b) for w in ops)
            clocks[proc] += t
            profile[proc].compute += t

        if step.pattern is None or not step.pattern.remote_messages():
            continue
        participants = {
            p for m in step.pattern.remote_messages() for p in (m.src, m.dst)
        }
        starts = {p: clocks[p] for p in participants}
        result = simulate(params, step.pattern, start_times=starts, rng=rng)
        timeline = result.timeline
        for p in participants:
            finish = result.ctimes.get(p, clocks[p])
            elapsed = finish - starts[p]
            send_busy = sum(
                e.duration
                for e in timeline.events
                if e.proc == p and e.kind is OpKind.SEND
            )
            recv_busy = sum(
                e.duration
                for e in timeline.events
                if e.proc == p and e.kind is OpKind.RECV
            )
            profile[p].send += send_busy
            profile[p].recv += recv_busy
            profile[p].wait += max(0.0, elapsed - send_busy - recv_busy)
            clocks[p] = finish

    makespan = max(clocks.values(), default=0.0)
    for p in procs:
        profile[p].idle = makespan - clocks[p]
    return ProgramProfile(
        makespan_us=makespan, processors=profile, meta=dict(trace.meta)
    )

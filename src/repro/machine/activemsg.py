"""A Split-C-style active-message runtime on the DES engine.

The paper's test program was written in Split-C, "whose active messages
mechanism gives priority to receive operations" — the assumption baked
into the Figure 2 algorithm.  This module provides that substrate as an
executable abstraction: per-processor :class:`ActiveMessagePort` objects
enforcing the single-port LogGP discipline (op durations, Figure 1 gap
rules, receive priority), over which small message-driven programs can be
written directly — ``store()`` a payload at a peer and its handler runs
after the receive operation completes, like Split-C's ``store``
instructions that the destination "is not aware of in the program".

The test suite uses this runtime as a third, handler-driven implementation
of communication steps; an example (``examples/irregular_pattern.py``)
drives it interactively.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.events import CommEvent, StepTimeline
from ..core.loggp import LogGPParameters, OpKind
from ..core.message import Message
from ..des import Environment, Event
from ..obs.events import get_tracer

__all__ = ["ActiveMessagePort", "SplitCMachine"]

Handler = Callable[[int, Any], None]


class ActiveMessagePort:
    """One processor's message port under the LogGP single-port discipline.

    ``store(dst, size, payload)`` enqueues an outgoing message; the port
    process interleaves sends and receives with receive priority and the
    Figure 1 gap rules, invoking the destination's handler after each
    receive operation completes.
    """

    def __init__(self, machine: "SplitCMachine", pid: int):
        self.machine = machine
        self.pid = pid
        self.env = machine.env
        self.last_kind: Optional[OpKind] = None
        self.last_end = 0.0
        self._outbox: list[tuple[int, int, Any]] = []
        self._arrived: list[tuple[float, int, Message, Any]] = []
        self._wakeup: Optional[Event] = None
        self._done = False

    # -- program-facing API ------------------------------------------------------
    def store(self, dst: int, size: int, payload: Any = None) -> None:
        """Issue an asynchronous store to processor ``dst`` (Split-C style)."""
        if self._done:
            raise RuntimeError("port already shut down")
        self._outbox.append((dst, size, payload))
        self._wake()

    def finish(self) -> None:
        """Declare that this processor will issue no further stores."""
        self._done = True
        self._wake()

    # -- internals -----------------------------------------------------------------
    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _delivered(self, msg: Message, payload: Any) -> None:
        heapq.heappush(self._arrived, (self.env.now, msg.uid, msg, payload))
        self._wake()

    def _run(self):
        params = self.machine.params
        env = self.env
        while True:
            now = env.now
            send_start = (
                max(now, params.earliest_start(self.last_kind, self.last_end, OpKind.SEND))
                if self._outbox
                else float("inf")
            )
            recv_start = (
                max(
                    now,
                    self._arrived[0][0],
                    params.earliest_start(self.last_kind, self.last_end, OpKind.RECV),
                )
                if self._arrived
                else float("inf")
            )

            if self._arrived and recv_start <= send_start:
                arrival, _, msg, payload = heapq.heappop(self._arrived)
                if recv_start > now:
                    yield env.timeout(recv_start - now)
                duration = params.recv_duration(msg.size)
                self.machine.timeline.add(
                    CommEvent(self.pid, OpKind.RECV, recv_start, duration, msg, arrival=arrival)
                )
                yield env.timeout(duration)
                self.last_kind, self.last_end = OpKind.RECV, recv_start + duration
                self.machine._pending -= 1
                handler = self.machine.handlers.get(self.pid)
                if handler is not None:
                    handler(msg.src, payload)
            elif self._outbox:
                if send_start > now:
                    self._wakeup = env.event()
                    yield env.any_of([env.timeout(send_start - now), self._wakeup])
                    self._wakeup = None
                    continue
                dst, size, payload = self._outbox.pop(0)
                msg = Message(
                    src=self.pid, dst=dst, size=size, uid=next(self.machine._uid)
                )
                duration = params.send_duration(size)
                self.machine.timeline.add(
                    CommEvent(self.pid, OpKind.SEND, send_start, duration, msg)
                )
                self.machine._pending += 1
                yield env.timeout(duration)
                self.last_kind, self.last_end = OpKind.SEND, send_start + duration
                env.process(self.machine._deliver(msg, payload))
            else:
                # Idle: block until a store or a delivery wakes us.  If
                # nothing ever does, the event heap drains and the run ends
                # with this process left suspended — the DES equivalent of
                # a processor parked in its scheduler.
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None


class SplitCMachine:
    """A P-processor machine running active-message programs.

    Usage::

        m = SplitCMachine(MEIKO_CS2)
        m.on_receive(1, lambda src, payload: ...)
        m.run(program)   # program(m) issues m.port(p).store(...) calls

    ``run`` returns the :class:`~repro.core.events.StepTimeline` of every
    send/receive operation performed.
    """

    def __init__(self, params: LogGPParameters):
        self.params = params
        self.env = Environment()
        self.timeline = StepTimeline(params=params)
        self.handlers: dict[int, Handler] = {}
        self._uid = itertools.count()
        self._pending = 0
        self._ports: dict[int, ActiveMessagePort] = {}
        self._started = False

    def port(self, pid: int) -> ActiveMessagePort:
        """The port of processor ``pid`` (created on first use)."""
        if not (0 <= pid < self.params.P):
            raise ValueError(f"pid {pid} out of range for P={self.params.P}")
        if pid not in self._ports:
            port = ActiveMessagePort(self, pid)
            self._ports[pid] = port
            if self._started:
                self.env.process(port._run(), name=f"port{pid}")
        return self._ports[pid]

    def on_receive(self, pid: int, handler: Handler) -> None:
        """Register the active-message handler of processor ``pid``."""
        self.handlers[pid] = handler

    def _deliver(self, msg: Message, payload: Any):
        yield self.env.timeout(self.params.L)
        self.port(msg.dst)._delivered(msg, payload)

    def run(self, program: Callable[["SplitCMachine"], None]) -> StepTimeline:
        """Run ``program`` (which issues stores and ``finish()`` calls)."""
        if self._started:
            raise RuntimeError("run() called twice on one machine")
        program(self)
        self._started = True
        for port in list(self._ports.values()):
            self.env.process(port._run(), name=f"port{port.pid}")
        self.env.run()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("sim.activemsg_runs")
            ctimes = {pid: port.last_end for pid, port in self._ports.items()}
            tracer.emit_comm_step(self.timeline, ctimes, algo="activemsg")
        return self.timeline

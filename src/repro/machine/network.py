"""The emulated machine's network: LogGP means with seeded jitter.

The paper observes that "the LogGP model gives an average behavior of the
transmission of messages over the network, and not a precise one" and that
a single late message can reshuffle the whole send/receive sequence
(section 4.1).  The emulated network therefore draws each message's wire
latency from a log-normal distribution around the LogGP ``L``, plus an
occasional straggler — enough variability to land the "measured"
communication times strictly inside the standard/worst-case band of
Figure 8, as the paper reports.

Local (same-processor) transfers are memory copies, charged per byte.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..blockops.calibration import LOCAL_COPY_US_PER_BYTE
from ..core.loggp import LogGPParameters
from ..core.message import Message
from ..uq.sampler import apply_jitter, jitter_normalizer

__all__ = ["JitteredNetwork"]


@dataclass
class JitteredNetwork:
    """Per-message latency sampler and local-copy pricer.

    Parameters
    ----------
    params:
        The LogGP means.
    jitter_sigma:
        Std-dev of the log-normal multiplier on ``L`` (0 = deterministic).
    straggler_prob, straggler_factor:
        With probability ``straggler_prob`` a message's latency is further
        multiplied by ``straggler_factor`` (network contention spikes).
    local_copy_us_per_byte:
        Cost of self-messages (local memory transfers).
    """

    params: LogGPParameters
    jitter_sigma: float = 0.10
    straggler_prob: float = 0.01
    straggler_factor: float = 2.5
    local_copy_us_per_byte: float = LOCAL_COPY_US_PER_BYTE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        if not (0.0 <= self.straggler_prob <= 1.0):
            raise ValueError("straggler_prob must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        self._rng = np.random.default_rng(self.seed)
        # Normalise so E[multiplier] == 1: the LogGP L is the *mean*
        # latency ("the model gives an average behavior", section 4.1),
        # so jitter must not systematically inflate it.
        self._norm = jitter_normalizer(
            self.jitter_sigma, self.straggler_prob, self.straggler_factor
        )

    def latency_of(self, message: Message) -> float:
        """Sampled wire latency (µs) for one message (mean ``params.L``)."""
        return apply_jitter(
            self.params.L * self._norm,
            self._rng,
            self.jitter_sigma,
            self.straggler_prob,
            self.straggler_factor,
        )

    def local_copy_us(self, message: Message) -> float:
        """Cost of a same-processor transfer (µs)."""
        if not message.is_local:
            raise ValueError("local_copy_us() expects a self-message")
        return message.size * self.local_copy_us_per_byte

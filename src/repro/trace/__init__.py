"""Program-trace representation (oblivious alternating comp/comm steps)."""

from .builder import TraceBuilder
from .program import ProgramTrace, Step, Work
from .validation import ClassReport, Finding, classify_trace
from .serialization import (
    cost_table_from_json,
    cost_table_to_json,
    load_trace,
    pattern_from_dict,
    pattern_to_dict,
    report_to_dict,
    save_report,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "ProgramTrace",
    "Step",
    "Work",
    "TraceBuilder",
    "save_trace",
    "load_trace",
    "trace_to_dict",
    "trace_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "report_to_dict",
    "save_report",
    "cost_table_to_json",
    "cost_table_from_json",
    "ClassReport",
    "Finding",
    "classify_trace",
]

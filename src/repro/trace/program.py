"""Program traces: the oblivious alternating comp/comm representation.

Paper section 2 restricts the analysed programs to *oblivious* algorithms
whose communication pattern does not depend on the input and whose
computation and communication steps alternate without overlapping.  Such a
program is fully described — for prediction purposes — by a
:class:`ProgramTrace`: an ordered list of :class:`Step`, each holding

* the basic-operation invocations every processor performs in the step's
  computation phase (:class:`Work` records), and
* the :class:`~repro.core.message.CommPattern` of the step's communication
  phase.

Applications (:mod:`repro.apps`) generate traces; the predictor
(:mod:`repro.core.program_sim`) and the machine emulator
(:mod:`repro.machine.emulator`) both consume them, which is what makes the
predicted-vs-"measured" comparisons of Figures 7-9 apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.message import CommPattern

__all__ = ["Work", "Step", "ProgramTrace"]


@dataclass(frozen=True, slots=True)
class Work:
    """One basic-operation invocation.

    ``op`` names a basic operation of the program's finite op set (the
    paper's restriction); the cost model in use must know how to price it.
    ``block`` identifies the block operated on (for the emulator's cache
    model); ``iteration`` tags the elimination iteration that issued it.
    ``b`` is the block size — per-``Work`` so variable-sized-block programs
    (a paper future-work item) are representable.
    """

    op: str
    b: int
    block: tuple[int, int] = (-1, -1)
    iteration: int = -1

    def __post_init__(self) -> None:
        if not self.op:
            raise ValueError("op name must be non-empty")
        if self.b < 1:
            raise ValueError(f"block size must be >= 1, got {self.b}")


@dataclass
class Step:
    """One alternating step: a computation phase then a communication phase."""

    #: per-processor work lists; processors with no work may be absent
    work: dict[int, list[Work]] = field(default_factory=dict)
    #: the communication phase (may be empty)
    pattern: Optional[CommPattern] = None
    #: free-form label for reports ("iter 3 wave 2", ...)
    label: str = ""

    def ops_of(self, proc: int) -> Sequence[Work]:
        """Work of ``proc`` this step (empty if none)."""
        return self.work.get(proc, ())

    def total_ops(self) -> int:
        """Number of basic-op invocations across all processors."""
        return sum(len(v) for v in self.work.values())

    def participants(self) -> set[int]:
        """Processors that compute or communicate this step."""
        procs = {p for p, ops in self.work.items() if ops}
        if self.pattern is not None:
            procs |= set(self.pattern.participants())
        return procs


@dataclass
class ProgramTrace:
    """A full program: ordered steps plus global metadata."""

    num_procs: int
    steps: list[Step] = field(default_factory=list)
    #: metadata for reports (matrix size, block size, layout name, ...)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def add_step(self, step: Step) -> None:
        """Append a step after validating its processor ids."""
        for p in step.work:
            if not (0 <= p < self.num_procs):
                raise ValueError(f"work for out-of-range processor {p}")
        if step.pattern is not None and step.pattern.num_procs != self.num_procs:
            raise ValueError(
                f"pattern has {step.pattern.num_procs} processors, trace has {self.num_procs}"
            )
        self.steps.append(step)

    # -- aggregate queries -------------------------------------------------------
    def total_ops(self) -> int:
        """Basic-op invocations over the whole program."""
        return sum(s.total_ops() for s in self.steps)

    def total_messages(self, include_local: bool = True) -> int:
        """Messages over the whole program."""
        count = 0
        for s in self.steps:
            if s.pattern is None:
                continue
            count += len(s.pattern) if include_local else len(s.pattern.remote_messages())
        return count

    def total_bytes(self) -> int:
        """Message bytes over the whole program (local + remote)."""
        return sum(s.pattern.total_bytes() for s in self.steps if s.pattern is not None)

    def blocks_by_proc(self) -> dict[int, dict[tuple[int, int], int]]:
        """Distinct blocks each processor operates on, with their sizes.

        ``{proc: {(i, j): b}}`` over the whole program; blocks tagged
        ``(-1, -1)`` (anonymous work) are ignored.  Drives the cache
        footprint of the prediction extension and the emulator's per-node
        block count.
        """
        out: dict[int, dict[tuple[int, int], int]] = {}
        for step in self.steps:
            for proc, ops in step.work.items():
                mine = out.setdefault(proc, {})
                for w in ops:
                    if w.block != (-1, -1):
                        mine[w.block] = max(mine.get(w.block, 0), w.b)
        return out

    def op_histogram(self) -> dict[str, int]:
        """``{op name: invocation count}`` over the whole program."""
        hist: dict[str, int] = {}
        for s in self.steps:
            for ops in s.work.values():
                for w in ops:
                    hist[w.op] = hist.get(w.op, 0) + 1
        return hist

    def validate(self) -> None:
        """Structural checks: ids in range, patterns sized consistently."""
        for idx, s in enumerate(self.steps):
            for p, ops in s.work.items():
                if not (0 <= p < self.num_procs):
                    raise ValueError(f"step {idx}: processor {p} out of range")
                for w in ops:
                    if w.b < 1:
                        raise ValueError(f"step {idx}: bad block size {w.b}")
            if s.pattern is not None:
                if s.pattern.num_procs != self.num_procs:
                    raise ValueError(f"step {idx}: pattern processor-count mismatch")
                s.pattern.validate()

    def __repr__(self) -> str:
        return (
            f"ProgramTrace(P={self.num_procs}, steps={len(self.steps)}, "
            f"ops={self.total_ops()}, msgs={self.total_messages()})"
        )

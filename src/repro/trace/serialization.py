"""JSON (de)serialization of traces, patterns and reports.

A production prediction tool needs its inputs and outputs on disk: traces
are expensive to regenerate, cost tables are measured once per machine,
and prediction reports feed downstream tooling.  The format is plain
JSON — versioned, self-describing, stable across sessions — with
round-trip guarantees covered by the test suite (including
hypothesis-generated traces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from ..core.message import CommPattern
from ..core.program_sim import PredictionReport
from .program import ProgramTrace, Step, Work

__all__ = [
    "FORMAT_VERSION",
    "pattern_to_dict",
    "pattern_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "report_to_dict",
    "save_report",
    "cost_table_to_json",
    "cost_table_from_json",
]

FORMAT_VERSION = 1


def _require(data: dict, kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} document, got {data.get('kind')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")


# -- communication patterns --------------------------------------------------

def pattern_to_dict(pattern: CommPattern) -> dict:
    """Serialisable form of a pattern (insertion order preserved)."""
    return {
        "kind": "comm_pattern",
        "version": FORMAT_VERSION,
        "num_procs": pattern.num_procs,
        "messages": [[m.src, m.dst, m.size] for m in pattern],
    }


def pattern_from_dict(data: dict) -> CommPattern:
    """Inverse of :func:`pattern_to_dict`."""
    _require(data, "comm_pattern")
    return CommPattern(data["num_procs"], edges=[tuple(e) for e in data["messages"]])


# -- traces -------------------------------------------------------------------

def trace_to_dict(trace: ProgramTrace) -> dict:
    """Serialisable form of a whole program trace."""
    steps = []
    for step in trace.steps:
        steps.append(
            {
                "label": step.label,
                "work": {
                    str(proc): [[w.op, w.b, list(w.block), w.iteration] for w in ops]
                    for proc, ops in step.work.items()
                },
                "pattern": pattern_to_dict(step.pattern) if step.pattern is not None else None,
            }
        )
    return {
        "kind": "program_trace",
        "version": FORMAT_VERSION,
        "num_procs": trace.num_procs,
        "meta": trace.meta,
        "steps": steps,
    }


def trace_from_dict(data: dict) -> ProgramTrace:
    """Inverse of :func:`trace_to_dict` (validates as it builds)."""
    _require(data, "program_trace")
    trace = ProgramTrace(num_procs=data["num_procs"])
    trace.meta.update(data.get("meta", {}))
    for raw in data["steps"]:
        work = {
            int(proc): [
                Work(op=op, b=b, block=tuple(block), iteration=iteration)
                for op, b, block, iteration in ops
            ]
            for proc, ops in raw.get("work", {}).items()
        }
        pattern = (
            pattern_from_dict(raw["pattern"]) if raw.get("pattern") is not None else None
        )
        trace.add_step(Step(work=work, pattern=pattern, label=raw.get("label", "")))
    return trace


def save_trace(trace: ProgramTrace, path: Union[str, Path]) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> ProgramTrace:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


# -- prediction reports --------------------------------------------------------

def report_to_dict(report: PredictionReport) -> dict:
    """Serialisable summary of a prediction (steps omitted by design)."""
    return {
        "kind": "prediction_report",
        "version": FORMAT_VERSION,
        "total_us": report.total_us,
        "comp_us": report.comp_us,
        "comm_us": report.comm_us,
        "per_proc_total_us": {str(p): v for p, v in report.per_proc_total_us.items()},
        "per_proc_comp_us": {str(p): v for p, v in report.per_proc_comp_us.items()},
        "meta": report.meta,
    }


def save_report(report: PredictionReport, path: Union[str, Path]) -> None:
    """Write a prediction report as JSON."""
    Path(path).write_text(json.dumps(report_to_dict(report)))


# -- cost tables ----------------------------------------------------------------

def cost_table_to_json(table: dict[str, dict[int, float]]) -> str:
    """Serialise a ``{op: {b: us}}`` cost table (e.g. a host measurement)."""
    doc: dict[str, Any] = {
        "kind": "cost_table",
        "version": FORMAT_VERSION,
        "ops": {op: {str(b): cost for b, cost in entries.items()} for op, entries in table.items()},
    }
    return json.dumps(doc)


def cost_table_from_json(text: str) -> dict[str, dict[int, float]]:
    """Inverse of :func:`cost_table_to_json`."""
    data = json.loads(text)
    _require(data, "cost_table")
    return {
        op: {int(b): float(cost) for b, cost in entries.items()}
        for op, entries in data["ops"].items()
    }

"""Helpers for constructing program traces step by step."""

from __future__ import annotations

from typing import Optional

from ..core.message import CommPattern
from .program import ProgramTrace, Step, Work

__all__ = ["TraceBuilder"]


class TraceBuilder:
    """Incremental construction of a :class:`ProgramTrace`.

    Usage::

        tb = TraceBuilder(num_procs=8)
        tb.work(proc=0, op="op1", b=40, block=(0, 0), iteration=0)
        tb.send(src_block=(0, 0), dst_block=(0, 1), owner=layout.owner, size=12800)
        tb.end_step(label="iter 0 wave 0")
        trace = tb.build(meta={"n": 960})
    """

    def __init__(self, num_procs: int):
        self.num_procs = num_procs
        self._trace = ProgramTrace(num_procs=num_procs)
        self._work: dict[int, list[Work]] = {}
        self._pattern: Optional[CommPattern] = None
        self._built = False

    def work(
        self,
        proc: int,
        op: str,
        b: int,
        block: tuple[int, int] = (-1, -1),
        iteration: int = -1,
    ) -> "TraceBuilder":
        """Record one basic-op invocation for ``proc`` in the current step."""
        self._work.setdefault(proc, []).append(
            Work(op=op, b=b, block=block, iteration=iteration)
        )
        return self

    def message(self, src_proc: int, dst_proc: int, size: int) -> "TraceBuilder":
        """Record one message in the current step's communication phase."""
        if self._pattern is None:
            self._pattern = CommPattern(self.num_procs)
        self._pattern.add(src_proc, dst_proc, size)
        return self

    def send(
        self,
        src_block: tuple[int, int],
        dst_block: tuple[int, int],
        owner,
        size: int,
    ) -> "TraceBuilder":
        """Record a block→block transfer, resolving owners via ``owner(i, j)``."""
        return self.message(owner(*src_block), owner(*dst_block), size)

    def end_step(self, label: str = "") -> "TraceBuilder":
        """Close the current step (kept even if empty, preserving cadence)."""
        self._trace.add_step(Step(work=self._work, pattern=self._pattern, label=label))
        self._work = {}
        self._pattern = None
        return self

    def build(self, meta: Optional[dict] = None) -> ProgramTrace:
        """Finalize; flushes a trailing unfinished step if one exists."""
        if self._built:
            raise RuntimeError("build() called twice")
        if self._work or self._pattern is not None:
            self.end_step()
        if meta:
            self._trace.meta.update(meta)
        self._built = True
        return self._trace

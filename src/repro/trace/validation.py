"""Restricted-class validation of program traces (paper section 2).

The paper's method applies to a *restricted class* of algorithms:

1. the communication pattern does not depend on the input (oblivious) —
   true by construction for anything expressed as a trace;
2. the data is divided into **equal-sized basic blocks**;
3. blocks are operated on by a **finite set of basic operations**;
4. computation and communication steps **alternate without overlapping**.

:func:`classify_trace` audits a trace against these conditions and
returns a :class:`ClassReport` of findings, so a user embedding their own
application learns up front whether the paper's accuracy story applies
(variable block sizes, for instance, are *representable* — a paper
future-work item — but leave the evaluated class).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .program import ProgramTrace

__all__ = ["Finding", "ClassReport", "classify_trace"]


@dataclass(frozen=True)
class Finding:
    """One audit observation."""

    condition: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        mark = "ok " if self.ok else "WARN"
        return f"[{mark}] {self.condition}: {self.detail}"


@dataclass
class ClassReport:
    """Outcome of a restricted-class audit."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def in_class(self) -> bool:
        """True when every condition held."""
        return all(f.ok for f in self.findings)

    def warnings(self) -> list[Finding]:
        """Only the violated conditions."""
        return [f for f in self.findings if not f.ok]

    def describe(self) -> str:
        """Readable audit listing."""
        verdict = "inside" if self.in_class else "OUTSIDE"
        lines = [f"trace is {verdict} the paper's restricted class"]
        lines += [str(f) for f in self.findings]
        return "\n".join(lines)


def classify_trace(trace: ProgramTrace, max_ops: int = 16) -> ClassReport:
    """Audit ``trace`` against the section 2 restrictions.

    ``max_ops`` bounds what still counts as a "finite set of basic
    operations" (the paper's apps use 4; anything beyond ``max_ops``
    distinct op names is flagged).
    """
    report = ClassReport()

    # condition 2: equal-sized basic blocks
    sizes = {
        w.b for step in trace.steps for ops in step.work.values() for w in ops
    }
    if len(sizes) <= 1:
        detail = f"single block size {next(iter(sizes))}" if sizes else "no work at all"
        report.findings.append(Finding("equal-sized blocks", True, detail))
    else:
        report.findings.append(
            Finding(
                "equal-sized blocks",
                False,
                f"{len(sizes)} distinct block sizes {sorted(sizes)} — "
                "variable-sized blocks are representable but outside the "
                "evaluated class (paper §7 future work)",
            )
        )

    # condition 3: finite basic-op set
    ops = set(trace.op_histogram())
    report.findings.append(
        Finding(
            "finite basic-operation set",
            len(ops) <= max_ops,
            f"{len(ops)} distinct ops: {sorted(ops)}",
        )
    )

    # condition 4: alternating, non-overlapping steps.  In the trace
    # representation every step *is* comp-then-comm, so the check is that
    # no step smuggles both heavy compute and self-overlap markers; we
    # flag steps that have neither work nor messages (dead steps are
    # harmless but suggest a malformed generator).
    dead = sum(
        1
        for step in trace.steps
        if step.total_ops() == 0 and (step.pattern is None or len(step.pattern) == 0)
    )
    report.findings.append(
        Finding(
            "alternating comp/comm steps",
            True,
            f"{len(trace)} steps ({dead} empty) — alternation is structural "
            "in the trace format",
        )
    )

    # condition 1: obliviousness is a property of trace *generation*; a
    # materialised trace is oblivious by definition, which we record.
    report.findings.append(
        Finding(
            "input-independent communication",
            True,
            "trace is materialised; patterns cannot depend on runtime data",
        )
    )

    # bonus checks: ids in range, patterns well-formed
    try:
        trace.validate()
        report.findings.append(Finding("structural validity", True, "validate() passed"))
    except ValueError as exc:
        report.findings.append(Finding("structural validity", False, str(exc)))
    return report

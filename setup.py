"""Setup shim: enables legacy editable installs where the ``wheel`` package
is unavailable (``pip install -e . --no-build-isolation --no-use-pep517``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
